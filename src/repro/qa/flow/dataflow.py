"""Intra-procedural dataflow for the ``shm-readonly`` contract.

Arrays obtained from the shared-memory operand store
(:func:`repro.engine.shm.resolve` / :func:`~repro.engine.shm.restore`
/ :meth:`~repro.engine.shm.ShmStore.attach`) are zero-copy views over
a segment other workers read concurrently; writing through one is a
cross-process corruption even though NumPy marks the view read-only
only at the top level (a reshaped or sliced alias can re-expose a
writable buffer on older NumPy). This pass tracks, *within one
function body*, which local names alias an attached array -- through
plain assignment, tuple unpacking, subscripts/attributes of an alias
and ``for``-iteration over one -- and flags every mutation funnel:

* subscript stores (``a[i] = ...``, ``a[i] += ...``),
* augmented assignment to an alias (``a += ...`` mutates in place),
* ``out=alias`` keyword arguments (``np.add(x, y, out=a)``),
* in-place ndarray method calls (``a.sort()``, ``a.fill(0)``, ...),
* attribute stores (``a.flags.writeable = True``).

A name rebound to a non-aliasing value (``a = a.copy()``) leaves the
tracked set, so copy-then-mutate stays clean. The analysis is
flow-ordered but branch-insensitive: taint acquired in any branch
persists afterwards (conservative in the safe direction).
"""

from __future__ import annotations

import ast

from repro.qa.flow.effects import MUTATOR_METHODS

#: In-place ndarray methods (superset of the per-file mutation rule's
#: table: shared-memory views additionally must not be byte-swapped or
#: have their flags loosened).
NDARRAY_MUTATORS = frozenset({
    "fill", "sort", "partition", "resize", "setfield", "itemset",
    "setflags", "byteswap",
}) | MUTATOR_METHODS

#: Call chains (resolved through the module's imports) that produce a
#: shared-memory-backed array.
ATTACH_SOURCES = frozenset({
    "repro.engine.shm.resolve",
    "repro.engine.shm.restore",
    "repro.engine.shm.ShmStore.attach",
})

#: Receiver names specific enough that ``<name>.attach(...)`` is
#: treated as a store attach even when the receiver's type cannot be
#: resolved (a store passed in as a parameter).
STORE_NAMES = frozenset({"store", "shm", "shm_store", "shmstore"})


class ShmViolation:
    """One write through a shared-memory alias: where and why."""

    def __init__(self, line, col, message):
        self.line = line
        self.col = col
        self.message = message

    def as_dict(self):
        return {"line": self.line, "col": self.col, "message": self.message}

    @classmethod
    def from_dict(cls, d):
        return cls(line=int(d["line"]), col=int(d["col"]),
                   message=d["message"])


def _root_name(node):
    """The base ``Name`` under a Subscript/Attribute/Starred chain."""
    while isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _target_names(target):
    """Every plain name bound by an assignment target."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out = []
        for element in target.elts:
            out.extend(_target_names(element))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


class _Taint:
    """Tracked aliases: name -> human-readable provenance."""

    def __init__(self):
        self.origin = {}

    def __contains__(self, name):
        return name in self.origin

    def taint(self, name, origin):
        self.origin[name] = origin

    def kill(self, name):
        self.origin.pop(name, None)


def analyze_function(func, resolve_chain, sources=ATTACH_SOURCES):
    """Run the shm-readonly dataflow over one function body.

    Parameters
    ----------
    func:
        An ``ast.FunctionDef`` / ``ast.AsyncFunctionDef``.
    resolve_chain:
        Callable mapping a dotted call chain (``"shm.restore"``) to its
        fully-qualified name through the module's imports, or ``None``.
    sources:
        Fully-qualified producer names whose results are tracked.

    Returns a list of :class:`ShmViolation`.
    """
    taint = _Taint()
    violations = []

    def is_source(call):
        chain = _dotted(call.func)
        if chain is None:
            return False
        resolved = resolve_chain(chain)
        if resolved in sources:
            return True
        if "." in chain:
            receiver, _, method = chain.rpartition(".")
            return (method == "attach"
                    and receiver.rsplit(".", 1)[-1] in STORE_NAMES)
        return False

    def expr_origin(node):
        """Provenance string when ``node`` evaluates to a tracked
        array (or a container of them), else None."""
        if isinstance(node, ast.Call) and is_source(node):
            return f"{_dotted(node.func)}(...) at line {node.lineno}"
        if isinstance(node, ast.Name) and node.id in taint:
            return f"alias of {node.id!r} ({taint.origin[node.id]})"
        if isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
            root = _root_name(node)
            if root is not None and root in taint:
                return f"view of {root!r} ({taint.origin[root]})"
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                origin = expr_origin(element)
                if origin is not None:
                    return origin
        if isinstance(node, ast.IfExp):
            return expr_origin(node.body) or expr_origin(node.orelse)
        return None

    def flag(node, name, how):
        violations.append(ShmViolation(
            line=node.lineno, col=node.col_offset + 1,
            message=(f"{how} writes into shared-memory array {name!r} "
                     f"({taint.origin[name]}); attached operands are "
                     f"read-only -- copy before mutating"),
        ))

    def check_store_target(node, target):
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            root = _root_name(target)
            if root is not None and root in taint:
                kind = ("subscript store" if isinstance(target, ast.Subscript)
                        else "attribute store")
                flag(node, root, kind)

    def check_call(call):
        for keyword in call.keywords:
            if keyword.arg == "out":
                origin = expr_origin(keyword.value)
                if origin is not None:
                    name = (keyword.value.id
                            if isinstance(keyword.value, ast.Name)
                            else _root_name(keyword.value))
                    if name in taint:
                        flag(call, name, "out= argument")
        chain = _dotted(call.func)
        if chain is not None and "." in chain:
            receiver, _, method = chain.rpartition(".")
            root = receiver.split(".", 1)[0]
            if method in NDARRAY_MUTATORS and root in taint:
                flag(call, root, f".{method}() call")

    def visit_stmt(stmt):
        for call in _calls_in(stmt):
            check_call(call)
        if isinstance(stmt, ast.Assign):
            origin = expr_origin(stmt.value)
            for target in stmt.targets:
                check_store_target(stmt, target)
                for name in _target_names(target):
                    if origin is not None:
                        taint.taint(name, origin)
                    else:
                        taint.kill(name)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            origin = expr_origin(stmt.value)
            check_store_target(stmt, stmt.target)
            for name in _target_names(stmt.target):
                if origin is not None:
                    taint.taint(name, origin)
                else:
                    taint.kill(name)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id in taint:
                flag(stmt, stmt.target.id, "augmented assignment")
            else:
                check_store_target(stmt, stmt.target)
        elif isinstance(stmt, ast.For):
            origin = expr_origin(stmt.iter)
            if origin is not None:
                for name in _target_names(stmt.target):
                    taint.taint(name, f"iteration over {origin}")
            visit_body(stmt.body)
            visit_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            visit_body(stmt.body)
            visit_body(stmt.orelse)
        elif isinstance(stmt, ast.If):
            visit_body(stmt.body)
            visit_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                origin = expr_origin(item.context_expr)
                if origin is not None and item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        taint.taint(name, origin)
            visit_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            visit_body(stmt.body)
            for handler in stmt.handlers:
                visit_body(handler.body)
            visit_body(stmt.orelse)
            visit_body(stmt.finalbody)

    def visit_body(body):
        for stmt in body:
            visit_stmt(stmt)

    visit_body(func.body)
    return violations


def _calls_in(stmt):
    """Calls in one statement, not descending into nested defs or the
    bodies of compound statements (those are visited as statements)."""
    blocks = []
    if isinstance(stmt, (ast.For, ast.While, ast.If, ast.With, ast.Try)):
        header_children = []
        for field, value in ast.iter_fields(stmt):
            if field in ("body", "orelse", "finalbody", "handlers"):
                continue
            header_children.append(value)
        nodes = []
        stack = [v for v in header_children if isinstance(v, ast.AST)]
        stack.extend(
            item for v in header_children if isinstance(v, list)
            for item in v if isinstance(item, ast.AST)
        )
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                nodes.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return nodes
    stack = [stmt]
    while stack:
        node = stack.pop()
        if node is not stmt and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            blocks.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return blocks


def _dotted(node):
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
