"""Per-module extraction for the whole-program effect analyzer.

One parse of one module produces a :class:`ModuleSummary`: every
function (methods and nested functions included) with its directly
observed :class:`~repro.qa.flow.effects.EffectAtom` list and raw call
sites, the import table, class records (bases, methods, inferred
``self.attr`` constructor types), module-level bindings, and the
intra-procedural ``shm-readonly`` violations
(:mod:`repro.qa.flow.dataflow`).

Everything here is JSON-serializable -- the summary is exactly what
the indexer caches per file digest, so a warm ``repro lint --deep``
re-run parses only modules whose bytes changed. Cross-module work
(project-symbol resolution, the call graph, the effect fixpoint) runs
over summaries afterwards and never needs the AST again; bump
:data:`SUMMARY_VERSION` whenever the extraction or the intrinsic
tables change shape, which orphans stale cache entries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.qa.flow import dataflow  # noqa: F401 -- submodule import
from repro.qa.flow.effects import (
    CLOCK,
    EffectAtom,
    INTRINSIC_METHODS,
    IO,
    MUTATOR_METHODS,
    NONDET_ITERATION,
    READS_GLOBAL,
    RNG_UNSEEDED,
    WRITES_GLOBAL,
    intrinsic_effect,
)

#: Bumping this invalidates every cached module summary.
SUMMARY_VERSION = 1

_MUTABLE_CALLS = frozenset({
    "dict", "list", "set", "OrderedDict", "defaultdict", "deque",
    "collections.OrderedDict", "collections.defaultdict",
    "collections.deque",
})


def dotted(node):
    """``a.b.c`` attribute/name chain as a string, or ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def expand_head(chain, *import_maps):
    """Resolve the head of a dotted chain through import tables (first
    map wins); returns the chain unchanged when no table binds it."""
    head, _, rest = chain.partition(".")
    for mapping in import_maps:
        target = mapping.get(head)
        if target is not None:
            return f"{target}.{rest}" if rest else target
    return chain


@dataclass
class CallSite:
    """One raw call site: the dotted callee chain plus descriptors for
    the first two positional arguments (enough to resolve
    ``functools.partial`` targets and pool-submitted callables)."""

    chain: object  # str | None
    line: int
    col: int
    args: list = field(default_factory=list)  # [(kind, chain-or-None)]

    def as_dict(self):
        return {"chain": self.chain, "line": self.line, "col": self.col,
                "args": [list(a) for a in self.args]}

    @classmethod
    def from_dict(cls, d):
        return cls(chain=d["chain"], line=int(d["line"]), col=int(d["col"]),
                   args=[tuple(a) for a in d["args"]])


@dataclass
class FunctionRecord:
    """One function's extraction output."""

    fq: str
    module: str
    name: str
    path: str
    line: int
    col: int
    nested: bool
    cls: object  # str | None: owning class fq
    atoms: list = field(default_factory=list)
    calls: list = field(default_factory=list)
    local_types: dict = field(default_factory=dict)   # name -> ctor chain
    local_imports: dict = field(default_factory=dict)  # alias -> fq

    def as_dict(self):
        return {
            "fq": self.fq, "module": self.module, "name": self.name,
            "path": self.path, "line": self.line, "col": self.col,
            "nested": self.nested, "cls": self.cls,
            "atoms": [a.as_dict() for a in self.atoms],
            "calls": [c.as_dict() for c in self.calls],
            "local_types": dict(self.local_types),
            "local_imports": dict(self.local_imports),
        }

    @classmethod
    def from_dict(cls, d):
        return cls(
            fq=d["fq"], module=d["module"], name=d["name"], path=d["path"],
            line=int(d["line"]), col=int(d["col"]), nested=bool(d["nested"]),
            cls=d["cls"],
            atoms=[EffectAtom.from_dict(a) for a in d["atoms"]],
            calls=[CallSite.from_dict(c) for c in d["calls"]],
            local_types=dict(d["local_types"]),
            local_imports=dict(d["local_imports"]),
        )


@dataclass
class ClassRecord:
    """One class: bases (raw chains), methods, ``self.attr`` types."""

    fq: str
    module: str
    name: str
    line: int
    bases: list = field(default_factory=list)
    methods: dict = field(default_factory=dict)     # name -> function fq
    attr_types: dict = field(default_factory=dict)  # attr -> ctor chain

    def as_dict(self):
        return {"fq": self.fq, "module": self.module, "name": self.name,
                "line": self.line, "bases": list(self.bases),
                "methods": dict(self.methods),
                "attr_types": dict(self.attr_types)}

    @classmethod
    def from_dict(cls, d):
        return cls(fq=d["fq"], module=d["module"], name=d["name"],
                   line=int(d["line"]), bases=list(d["bases"]),
                   methods=dict(d["methods"]),
                   attr_types=dict(d["attr_types"]))


@dataclass
class ModuleSummary:
    """Everything the cross-module phases need from one file."""

    module: str
    path: str
    digest: str
    imports: dict = field(default_factory=dict)
    functions: dict = field(default_factory=dict)  # fq -> FunctionRecord
    classes: dict = field(default_factory=dict)    # fq -> ClassRecord
    module_types: dict = field(default_factory=dict)
    module_assigned: list = field(default_factory=list)
    module_mutables: list = field(default_factory=list)
    shm_findings: list = field(default_factory=list)  # (fq, ShmViolation)
    parse_error: object = None  # str | None

    def as_dict(self):
        return {
            "version": SUMMARY_VERSION,
            "module": self.module, "path": self.path, "digest": self.digest,
            "imports": dict(self.imports),
            "functions": {fq: r.as_dict()
                          for fq, r in self.functions.items()},
            "classes": {fq: c.as_dict() for fq, c in self.classes.items()},
            "module_types": dict(self.module_types),
            "module_assigned": list(self.module_assigned),
            "module_mutables": list(self.module_mutables),
            "shm_findings": [
                {"func": fq, **violation.as_dict()}
                for fq, violation in self.shm_findings
            ],
            "parse_error": self.parse_error,
        }

    @classmethod
    def from_dict(cls, d):
        return cls(
            module=d["module"], path=d["path"], digest=d["digest"],
            imports=dict(d["imports"]),
            functions={fq: FunctionRecord.from_dict(r)
                       for fq, r in d["functions"].items()},
            classes={fq: ClassRecord.from_dict(c)
                     for fq, c in d["classes"].items()},
            module_types=dict(d["module_types"]),
            module_assigned=list(d["module_assigned"]),
            module_mutables=list(d["module_mutables"]),
            shm_findings=[
                (entry["func"], dataflow.ShmViolation.from_dict(entry))
                for entry in d["shm_findings"]
            ],
            parse_error=d.get("parse_error"),
        )


# -- extraction ---------------------------------------------------------------


def _scope_split(root):
    """Nodes in ``root``'s own scope (lambdas included), plus directly
    nested function definitions (their bodies excluded)."""
    nodes, nested = [], []
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested.append(node)
            continue
        if isinstance(node, ast.ClassDef):
            continue
        nodes.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return nodes, nested


def _is_mutable_binding(value):
    if isinstance(value, (ast.Dict, ast.List, ast.Set,
                          ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        chain = dotted(value.func)
        return chain in _MUTABLE_CALLS
    return False


def _relative_base(module, is_package, level):
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[:len(parts) - drop] if drop < len(parts) else []
    return ".".join(parts)


def _record_imports(node, imports, module, is_package):
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.asname is not None:
                imports[alias.asname] = alias.name
            else:
                head = alias.name.split(".", 1)[0]
                imports.setdefault(head, head)
    elif isinstance(node, ast.ImportFrom):
        if node.level:
            base = _relative_base(module, is_package, node.level)
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
        else:
            base = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            target = f"{base}.{alias.name}" if base else alias.name
            imports[alias.asname or alias.name] = target


class _FunctionExtractor:
    """Extracts atoms/calls/locals for one function scope."""

    def __init__(self, summary, func, fq, cls_fq, nested):
        self.summary = summary
        self.func = func
        self.record = FunctionRecord(
            fq=fq, module=summary.module, name=func.name, path=summary.path,
            line=func.lineno, col=func.col_offset + 1, nested=nested,
            cls=cls_fq,
        )
        self.scope, self.nested_defs = _scope_split(func)
        self.global_decls = set()
        self.locals = self._collect_locals()
        self._reads_seen = set()

    # -- helpers -----------------------------------------------------------

    def _collect_locals(self):
        names = set()
        args = self.func.args
        for a in (args.posonlyargs + args.args + args.kwonlyargs):
            names.add(a.arg)
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
        for node in self.scope:
            if isinstance(node, ast.Global):
                self.global_decls.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Store):
                names.add(node.id)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                names.add(node.name)
        for nested in self.nested_defs:
            names.add(nested.name)
        return names - self.global_decls

    def resolve(self, chain):
        return expand_head(chain, self.record.local_imports,
                           self.summary.imports)

    def atom(self, effect, node, detail):
        self.record.atoms.append(EffectAtom(
            effect=effect, line=node.lineno, col=node.col_offset + 1,
            detail=detail,
        ))

    def _arg_descriptor(self, arg):
        if isinstance(arg, ast.Lambda):
            return ("lambda", None)
        chain = dotted(arg)
        if chain is not None:
            return ("chain", chain)
        return ("opaque", None)

    # -- the pass ----------------------------------------------------------

    def run(self):
        for node in self.scope:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                _record_imports(node, self.record.local_imports,
                                self.summary.module, is_package=False)
        for node in self.scope:
            if isinstance(node, ast.Call):
                self._visit_call(node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._visit_store(node)
            elif isinstance(node, ast.For):
                self._check_nondet_iter(node.iter, node)
            elif isinstance(node, ast.comprehension):
                self._check_nondet_iter(node.iter, node.iter)
            elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load):
                self._visit_read(node)
        return self.record

    def _visit_call(self, call):
        chain = dotted(call.func)
        site = CallSite(
            chain=chain, line=call.lineno, col=call.col_offset + 1,
            args=[self._arg_descriptor(a) for a in call.args[:2]],
        )
        self.record.calls.append(site)
        if chain is None:
            return
        resolved = self.resolve(chain)
        self._intrinsic_atoms(call, chain, resolved)
        head = chain.split(".", 1)[0]
        if ("." in chain and chain.rsplit(".", 1)[1] in MUTATOR_METHODS
                and head in self.summary.module_assigned
                and head not in self.locals):
            self.atom(WRITES_GLOBAL, call,
                      f"{chain}() mutates module-level {head!r}")

    def _intrinsic_atoms(self, call, chain, resolved):
        if resolved == "numpy.random.default_rng":
            unseeded = not call.args or (
                isinstance(call.args[0], ast.Constant)
                and call.args[0].value is None
            )
            if unseeded:
                self.atom(RNG_UNSEEDED, call, "numpy.random.default_rng()")
            return
        effect = intrinsic_effect(resolved)
        if effect is not None:
            self.atom(effect, call, f"{resolved}()")
            return
        if "." in chain:
            method = chain.rsplit(".", 1)[1]
            method_effect = INTRINSIC_METHODS.get(method)
            if method_effect is not None:
                self.atom(method_effect, call, f"{chain}()")

    def _visit_store(self, node):
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if isinstance(target, ast.Name) and \
                    target.id in self.global_decls:
                self.atom(WRITES_GLOBAL, node,
                          f"rebinds global {target.id!r}")
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                root = target
                while isinstance(root, (ast.Subscript, ast.Attribute)):
                    root = root.value
                if isinstance(root, ast.Name) and \
                        root.id not in self.locals and (
                            root.id in self.summary.module_assigned
                            or root.id in self.global_decls):
                    self.atom(WRITES_GLOBAL, node,
                              f"store into module-level {root.id!r}")
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                isinstance(node.value, ast.Call):
            ctor = dotted(node.value.func)
            if ctor is not None:
                self.record.local_types[node.targets[0].id] = ctor

    def _visit_read(self, node):
        name = node.id
        if name in self._reads_seen or name in self.locals:
            return
        if name in self.summary.module_mutables:
            self._reads_seen.add(name)
            self.atom(READS_GLOBAL, node,
                      f"reads module-level mutable {name!r}")

    def _check_nondet_iter(self, iter_node, at):
        nondet = isinstance(iter_node, (ast.Set, ast.SetComp))
        if isinstance(iter_node, ast.Call):
            nondet = dotted(iter_node.func) in ("set", "frozenset")
        if nondet:
            self.atom(NONDET_ITERATION, at,
                      "iterates a set (hash-order dependent)")


def extract_module(module, path, source, digest, is_package=False):
    """Parse one module and produce its :class:`ModuleSummary`."""
    summary = ModuleSummary(module=module, path=str(path), digest=digest)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        summary.parse_error = f"{exc.msg} (line {exc.lineno})"
        return summary

    # Pass A: module-level bindings.
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            _record_imports(node, summary.imports, module, is_package)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                summary.module_assigned.append(target.id)
                if node.value is not None and \
                        _is_mutable_binding(node.value):
                    summary.module_mutables.append(target.id)
                if isinstance(node.value, ast.Call):
                    ctor = dotted(node.value.func)
                    if ctor is not None:
                        summary.module_types[target.id] = ctor

    # Pass B: functions, methods, nested functions.
    def resolve_for(record):
        def _resolve(chain):
            head, _, rest = chain.partition(".")
            ctor = record.local_types.get(head) or \
                summary.module_types.get(head)
            if ctor is not None and rest:
                base = expand_head(ctor, record.local_imports,
                                   summary.imports)
                return f"{base}.{rest}"
            return expand_head(chain, record.local_imports, summary.imports)
        return _resolve

    def visit_function(func, prefix, cls_fq, nested):
        fq = f"{prefix}.{func.name}"
        extractor = _FunctionExtractor(summary, func, fq, cls_fq, nested)
        record = extractor.run()
        summary.functions[fq] = record
        for violation in dataflow.analyze_function(
                func, resolve_for(record)):
            summary.shm_findings.append((fq, violation))
        if cls_fq is not None:
            cls = summary.classes[cls_fq]
            cls.methods.setdefault(func.name, fq)
            _collect_attr_types(func, extractor, cls)
        for inner in extractor.nested_defs:
            visit_function(inner, fq, None, nested=True)

    def visit_class(node, prefix):
        cls_fq = f"{prefix}.{node.name}"
        record = ClassRecord(
            fq=cls_fq, module=module, name=node.name, line=node.lineno,
            bases=[c for c in (dotted(b) for b in node.bases)
                   if c is not None],
        )
        summary.classes[cls_fq] = record
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit_function(child, cls_fq, cls_fq, nested=False)
            elif isinstance(child, ast.ClassDef):
                visit_class(child, cls_fq)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visit_function(node, module, None, nested=False)
        elif isinstance(node, ast.ClassDef):
            visit_class(node, module)
    return summary


def _collect_attr_types(func, extractor, cls):
    """``self.x = Ctor(...)`` assignments seen anywhere in a method
    populate the class's attribute-type table."""
    for node in extractor.scope:
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        ctor = dotted(node.value.func)
        if ctor is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                cls.attr_types.setdefault(target.attr, ctor)
