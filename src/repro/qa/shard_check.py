"""Shard determinism check: sharded runs must carry the serial bits.

The shard fan-out (:mod:`repro.engine.shard`, DESIGN.md §14) claims
bit-identity at any shard count, under any block assignment, through
shard failure and re-dispatch, across mixed backends, and with or
without a shared disk tier. This checker boots N real local daemons
(in-process :class:`~repro.service.app.ServiceThread` instances on
ephemeral ports -- the same daemon ``repro serve`` runs) as shard
workers, then diffs every sharded artifact bit-for-bit against the
serial oracle:

* **cold** -- a sharded ``repro score`` equivalent with empty caches;
* **disk-warm** -- the coordinator and every daemon share one
  ``--cache-dir``; a second sharded run over the now-warm tier must
  serve disk hits and the same bits;
* **vectorized daemons** -- shard workers on the vectorized backend,
  coordinator and oracle on reference: mixing backends across the
  shard boundary must be invisible in the bits;
* **kill-one-shard** -- one of the N daemons is shut down before the
  run; the coordinator must mark it dead, re-dispatch its blocks to
  the survivors (visible in ``shard_failures`` /
  ``shard_blocks_redispatched``), and still produce the oracle's bits;
* **sharded subset search** -- ``SubsetSearch`` candidate batches
  executed on the shards, diffed against the serial search report.

Run as ``python -m repro.qa.shard_check --shards 2`` (the CI shard
smoke job) or via ``repro qa --shards 2``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace


def _boot_daemons(config, n_shards):
    """N in-process daemons; returns (threads, 'host:port,...' spec)."""
    from repro.service import ServiceThread

    threads = [ServiceThread(config).start() for _ in range(n_shards)]
    spec = ",".join(f"{t.host}:{t.port}" for t in threads)
    return threads, spec


def _stop_daemons(threads, failures, label):
    from repro.service import ServiceClient

    for thread in threads:
        try:
            ServiceClient(host=thread.host, port=thread.port,
                          retries=0).shutdown()
            thread.join()
        except Exception as exc:  # qa-ignore[overbroad-except]
            # Shutdown failure is itself a finding, not a crash.
            failures.append(f"[{label}:shutdown] {exc!r}")


def _sharded_scorecard(suite, focus, config, shard_hosts):
    """One sharded scoring run through a fresh coordinator engine;
    returns (scorecard, metrics-values dict)."""
    from repro.engine import Engine
    from repro.experiments import runner
    from repro.experiments.runner import measure_suites, perspector_for

    runner.clear_cache()
    sharded_config = replace(config, shards=shard_hosts)
    matrix = measure_suites([suite], sharded_config)[suite]
    engine = Engine.from_config(sharded_config)
    try:
        card = perspector_for(sharded_config, engine=engine).score(
            matrix, focus=focus)
        return card, engine.metrics.snapshot().as_dict()
    finally:
        engine.close()


def _diff_run(cli_card, suite, focus, config, shard_hosts, label,
              failures, expect_disk_hits=False, expect_dispatch=True):
    """Run one sharded scoring arm and diff it against the oracle."""
    from repro.qa.determinism import diff_scorecards

    card, values = _sharded_scorecard(suite, focus, config, shard_hosts)
    failures.extend(f"[{label}] {m}" for m in diff_scorecards(cli_card,
                                                              card))
    if str(card) != str(cli_card):
        failures.append(f"[{label}] rendered text differs from the "
                        f"serial oracle")
    if expect_dispatch and values.get("shard_blocks_dispatched", 0) <= 0:
        failures.append(f"[{label}] expected shard blocks to be "
                        f"dispatched; counter is "
                        f"{values.get('shard_blocks_dispatched', 0)}")
    if expect_disk_hits and values.get("disk_hits", 0) <= 0:
        failures.append(f"[{label}] expected nonzero disk-tier hits on "
                        f"the warm run; got {values.get('disk_hits', 0)}")
    return values


def _check_search(serial_engine_config, shard_hosts, seed, failures,
                  label):
    """Sharded subset search vs the serial search, bit-for-bit."""
    from repro.engine import Engine, SubsetEvaluator, SubsetSearch
    from repro.engine.bench import build_subject
    from repro.qa.determinism import diff_search_results

    matrix = build_subject(seed=seed, n_workloads=10, n_events=3,
                           length=32)

    def _search(engine):
        evaluator = SubsetEvaluator(matrix, seed=seed, engine=engine)
        return SubsetSearch(matrix, 4, seed=seed,
                            evaluator=evaluator).search(8, method="lhs")

    serial_engine = Engine.from_config(serial_engine_config)
    try:
        serial = _search(serial_engine)
    finally:
        serial_engine.close()
    sharded_engine = Engine.from_config(
        replace(serial_engine_config, shards=shard_hosts))
    try:
        sharded = _search(sharded_engine)
        values = sharded_engine.metrics.snapshot().as_dict()
    finally:
        sharded_engine.close()
    failures.extend(f"[{label}] {m}"
                    for m in diff_search_results(serial, sharded))
    if values.get("shard_blocks_dispatched", 0) <= 0:
        failures.append(f"[{label}] expected shard blocks to be "
                        f"dispatched during the search; counter is "
                        f"{values.get('shard_blocks_dispatched', 0)}")


def check_shards(n_shards=2, suite="nbench", focus="all", cache_dir=None,
                 quick=True, backend=None):
    """Run the full sharded-vs-serial check; returns a list of failure
    strings (empty = PASS).

    The serial oracle always runs on the reference backend with no
    shards. ``backend`` selects the backend the *primary* shard daemons
    run (default reference); a vectorized-daemon variant runs in
    addition whenever the primary daemons are not already vectorized.
    """
    from repro.engine.diskcache import stale_artifacts
    from repro.engine.shm import leaked_segments
    from repro.experiments import runner
    from repro.experiments.runner import ExperimentConfig
    from repro.qa.determinism import diff_scorecards
    from repro.qa.service_check import _cli_scorecard

    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    preset = (ExperimentConfig.quick if quick
              else ExperimentConfig.full)()
    # The coordinator engine stays on the reference backend throughout;
    # daemon backends vary per variant. Workers stay at 1 on both arms:
    # sharding replaces the pool fan-out, and the oracle proves the
    # serial path.
    base = replace(preset, workers=1, cache_dir=None)
    oracle_config = replace(base, backend="reference")
    daemon_config = replace(base, backend=backend)
    failures = []

    # Serial oracle, cold measurement memo: the bits every sharded run
    # must reproduce.
    runner.clear_cache()
    cli_card = _cli_scorecard(suite, focus, oracle_config)

    # -- cold + kill-one-shard (same daemon generation) -------------------
    threads, spec = _boot_daemons(daemon_config, n_shards)
    try:
        _diff_run(cli_card, suite, focus, oracle_config, spec,
                  f"shards={n_shards}:cold", failures)
        if len(threads) > 1:
            # Kill shard 0, keep its address in the host list: the
            # coordinator must discover the corpse, re-dispatch its
            # blocks to the survivors and still produce the oracle bits.
            _stop_daemons(threads[:1], failures,
                          f"shards={n_shards}:kill-one")
            values = _diff_run(cli_card, suite, focus, oracle_config,
                               spec, f"shards={n_shards}:kill-one",
                               failures)
            if values.get("shard_failures", 0) < 1:
                failures.append(f"[shards={n_shards}:kill-one] expected "
                                f"the dead shard to be detected; "
                                f"shard_failures is "
                                f"{values.get('shard_failures', 0)}")
            if values.get("shard_blocks_redispatched", 0) < 1:
                failures.append(f"[shards={n_shards}:kill-one] expected "
                                f"re-dispatched blocks; counter is "
                                f"{values.get('shard_blocks_redispatched', 0)}")
            survivors = threads[1:]
        else:
            survivors = threads
        # -- sharded subset search over the surviving daemons -------------
        live_spec = ",".join(f"{t.host}:{t.port}" for t in survivors)
        _check_search(oracle_config, live_spec, seed=3, failures=failures,
                      label=f"shards={len(survivors)}:search")
    finally:
        _stop_daemons(threads[1:] if len(threads) > 1 else threads,
                      failures, f"shards={n_shards}")

    # -- disk-warm: daemons and coordinator share one cache dir -----------
    if cache_dir is not None:
        disk_daemon = replace(daemon_config, cache_dir=cache_dir)
        disk_oracle = replace(oracle_config, cache_dir=cache_dir)
        threads, spec = _boot_daemons(disk_daemon, n_shards)
        try:
            _diff_run(cli_card, suite, focus, disk_oracle, spec,
                      f"shards={n_shards}:disk-cold", failures)
            # On a fully warm tier every pair is a disk hit and there is
            # nothing left to dispatch -- the disk IS the fast path.
            _diff_run(cli_card, suite, focus, disk_oracle, spec,
                      f"shards={n_shards}:disk-warm", failures,
                      expect_disk_hits=True, expect_dispatch=False)
        finally:
            _stop_daemons(threads, failures,
                          f"shards={n_shards}:disk")

    # -- vectorized daemons vs the reference oracle -----------------------
    if backend != "vectorized":
        vec_config = replace(base, backend="vectorized")
        threads, spec = _boot_daemons(vec_config, n_shards)
        try:
            _diff_run(cli_card, suite, focus, oracle_config, spec,
                      f"shards={n_shards}:vectorized", failures)
        finally:
            _stop_daemons(threads, failures,
                          f"shards={n_shards}:vectorized")

    # -- one shard must equal many shards must equal serial ---------------
    threads, spec = _boot_daemons(daemon_config, 1)
    try:
        card_one, _values = _sharded_scorecard(suite, focus,
                                               oracle_config, spec)
        failures.extend(f"[shards=1] {m}"
                        for m in diff_scorecards(cli_card, card_one))
    finally:
        _stop_daemons(threads, failures, "shards=1")

    # Leak checks: every daemon was shut down; nothing may survive.
    import gc

    gc.collect()
    leaked = leaked_segments()
    if leaked:
        failures.append(f"leaked shared-memory segment(s) after "
                        f"shutdown: {sorted(leaked)}")
    if cache_dir is not None:
        stale = stale_artifacts(cache_dir)
        if stale:
            failures.append(f"stale disk-cache tmp artifact(s) after "
                            f"shutdown: {sorted(stale)}")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.qa.shard_check",
        description="Shard smoke: boot N local scoring daemons as shard "
                    "workers, run sharded scoring and subset search, "
                    "diff bit-for-bit against the serial oracle "
                    "(cold, disk-warm, vectorized daemons, "
                    "kill-one-shard).",
    )
    parser.add_argument("--shards", type=int, default=2, metavar="N",
                        help="shard daemons to boot (default 2)")
    parser.add_argument("--suite", default="nbench",
                        help="suite to score (default: nbench)")
    parser.add_argument("--focus", default="all",
                        choices=["all", "llc", "tlb", "branch", "core"])
    parser.add_argument("--full", action="store_true",
                        help="full-length traces (slower; default is "
                             "the quick preset)")
    parser.add_argument("--backend", default=None,
                        help="backend for the primary shard daemons "
                             "(default reference; the serial oracle "
                             "always runs reference)")
    args = parser.parse_args(argv)

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-shard-smoke-") as tmp:
        failures = check_shards(
            n_shards=args.shards, suite=args.suite, focus=args.focus,
            cache_dir=tmp, quick=not args.full, backend=args.backend,
        )
    head = (f"shard determinism check (shards={args.shards}, "
            f"suite={args.suite!r}, focus={args.focus!r}"
            + (f", backend={args.backend!r}" if args.backend else "")
            + "): ")
    if not failures:
        print(head + "PASS -- sharded scorecards and subset search "
                     "bit-identical to the serial oracle (cold, "
                     "disk-warm, vectorized daemons, kill-one-shard, "
                     "single-shard); failed-shard blocks re-dispatched; "
                     "shutdown leak-free")
        return 0
    print(head + f"FAIL -- {len(failures)} problem(s)")
    for failure in failures:
        print(f"  {failure}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
