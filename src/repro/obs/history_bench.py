"""Recording-overhead benchmark for the run-history store.

History recording rides on every ``--history-dir`` run, so it carries
the same cost contract as span tracing (DESIGN.md section 15), guarded
by the committed ``BENCH_history.json`` baseline: a full score pass
with a history recorder installed -- publish hooks, wire encoding,
record build and the append to the on-disk store -- finishes within
``max_overhead_pct`` (5%) of the same pass without one.

Both legs run **traced**: the recording path always installs a tracer
(the record carries self-time totals), so an untraced baseline would
bill tracing's own ~2% to the recorder. Benching traced-vs-
traced+recorded isolates exactly the cost this gate owns; the tracing
cost itself is ``python -m repro.obs.bench``'s jurisdiction. Legs run
interleaved, best-of-``repeats``, kernel cache off, and the recorded
pass is diffed bit-for-bit against the plain one -- observe, never
perturb.

The overhead is measured directly, not by differencing the two leg
totals: recording is a strictly *appended* block (publish hooks are
O(1) list appends; the wire encoding, record build and store append
run after the scores exist), so the bench times that block on its own
and normalizes by the best plain pass. Subtracting two ~0.5 s wall
times to resolve a ~1 ms cost would drown the signal in scheduler
noise on a busy host; timing the added block cannot.

::

    python -m repro.obs.history_bench            # run and print
    python -m repro.obs.history_bench --write    # refresh BENCH_history.json
    python -m repro.obs.history_bench --check    # exit 1 if over baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

from repro.core.perspector import PerspectorConfig
from repro.engine.bench import build_subject
from repro.engine.engine import Engine
from repro.obs import history as obs_history
from repro.obs import trace as obs_trace
from repro.obs.manifest import build_manifest

#: The obs bench's subject: one pass around a second, so best-of-N x 2
#: legs stays quick while dwarfing per-record cost.
SUBJECT = {"n_workloads": 24, "n_events": 4, "length": 48}
MAX_OVERHEAD_PCT = 5.0
DEFAULT_BASELINE = "BENCH_history.json"


def _score_pass(recorded, history_dir, seed=0, subject=None):
    """One traced, cache-off score pass; with ``recorded``, the full
    history path runs too (recorder, wire encoding, store append).
    Returns (pass_seconds, recording_seconds, scorecard) --
    ``recording_seconds`` is the recording block alone (0.0 on the
    plain leg); ``pass_seconds`` includes it."""
    matrix = build_subject(seed=seed, **dict(SUBJECT if subject is None
                                             else subject))
    engine = Engine(cache=False)
    tracer = obs_trace.install(obs_trace.Tracer())
    recording_s = 0.0
    if recorded:
        recorder = obs_history.install_recorder()
    try:
        start = time.perf_counter()
        card = engine.score_matrix(matrix, PerspectorConfig(), "all")
        if recorded:
            rec_start = time.perf_counter()
            obs_history.publish("scorecard", card)
            obs_history.publish("metrics", engine.metrics.snapshot())
            manifest = build_manifest(
                command="bench", argv=[],
                config={"seed": seed, **dict(SUBJECT)},
            )
            record = obs_history.build_record(
                "bench", manifest, recorder, spans=tracer.spans(),
                wall_s=rec_start - start,
            )
            obs_history.HistoryStore(history_dir).append(record)
            recording_s = time.perf_counter() - rec_start
        elapsed = time.perf_counter() - start
    finally:
        if recorded:
            obs_history.uninstall_recorder()
        obs_trace.uninstall()
        engine.close()
    return elapsed, recording_s, card


def run_bench(seed=0, repeats=5, subject=None):
    """Run both legs interleaved; return the result record.

    One untimed warmup settles numpy/BLAS state (and, on the first
    recorded pass below, the one-time costs the steady state never
    pays again: the lazy wire-protocol import and the memoized
    ``git describe``). Each leg keeps its best of ``repeats``
    interleaved runs; the overhead ratio divides the best recording
    block by the best plain pass.
    """
    from repro.qa.determinism import diff_scorecards

    subject = dict(SUBJECT if subject is None else subject)
    with tempfile.TemporaryDirectory(prefix="repro-histbench-") as tmp:
        _score_pass(False, tmp, seed=seed, subject=subject)  # warmup
        plain_s = recorded_s = recording_s = float("inf")
        plain_card = recorded_card = None
        for _ in range(repeats):
            elapsed, _, plain_card = _score_pass(False, tmp, seed=seed,
                                                 subject=subject)
            plain_s = min(plain_s, elapsed)
            elapsed, block_s, recorded_card = _score_pass(
                True, tmp, seed=seed, subject=subject)
            recorded_s = min(recorded_s, elapsed)
            recording_s = min(recording_s, block_s)
        records = len(obs_history.HistoryStore(tmp))

    overhead_pct = 100.0 * recording_s / plain_s
    return {
        "subject": subject,
        "repeats": repeats,
        "traced_s": round(plain_s, 4),
        "recorded_s": round(recorded_s, 4),
        "recording_s": round(recording_s, 6),
        "overhead_pct": round(overhead_pct, 2),
        "records_written": records,
        "identical": diff_scorecards(plain_card, recorded_card) == [],
        "max_overhead_pct": MAX_OVERHEAD_PCT,
    }


def render(result):
    subject = result["subject"]
    return "\n".join([
        "history-recording overhead bench "
        f"({subject['n_workloads']} workloads x {subject['n_events']} "
        f"events, cache off, traced both legs, best of "
        f"{result['repeats']}):",
        f"  traced only:       {result['traced_s']:.3f} s",
        f"  traced + recorded: {result['recorded_s']:.3f} s "
        f"({result['records_written']} records written)",
        f"  recording block:   {1e3 * result['recording_s']:.2f} ms "
        f"-> {result['overhead_pct']:+.2f}% of the traced pass "
        f"(baseline allows <= {result['max_overhead_pct']:.0f}%)",
        f"  recorded scorecard bit-identical to plain: "
        f"{result['identical']}",
    ])


def check(result, baseline):
    """Gate failures of ``result`` against a baseline record."""
    max_overhead = float(baseline.get("max_overhead_pct",
                                      MAX_OVERHEAD_PCT))
    failures = []
    if not result["identical"]:
        failures.append("recorded scorecard is not bit-identical to "
                        "the unrecorded pass")
    if result["overhead_pct"] > max_overhead:
        failures.append(
            f"recording overhead {result['overhead_pct']:+.1f}% "
            f"exceeds the {max_overhead:.0f}% baseline"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.history_bench",
        description="Time a history-recorded score pass against a "
                    "plain traced one.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--json", metavar="PATH",
                        default=DEFAULT_BASELINE,
                        help="baseline file for --write/--check")
    parser.add_argument("--write", action="store_true",
                        help="write the result as the new baseline")
    parser.add_argument("--check", action="store_true",
                        help="fail unless overhead is within the "
                             "baseline bound and outputs bit-identical")
    args = parser.parse_args(argv)

    result = run_bench(seed=args.seed, repeats=args.repeats)
    print(render(result))

    if args.write:
        with open(args.json, "w") as f:
            json.dump(result, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.json}")
    if args.check:
        try:
            with open(args.json) as f:
                baseline = json.load(f)
        except FileNotFoundError:
            baseline = {}
        failures = check(result, baseline)
        if failures:
            for failure in failures:
                print(f"CHECK FAIL: {failure}")
            return 1
        print("check passed: recording within "
              f"{baseline.get('max_overhead_pct', MAX_OVERHEAD_PCT):.0f}"
              "% and bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
