"""Run manifests: every trace ships with enough context to re-run it.

A trace file answers "where did the time go"; the manifest next to it
answers "what exactly ran". It records the full argv, the resolved
engine knobs (seed, workers, cache mode, cache dir, preset), a stable
SHA-256 digest of the configuration, the git state of the tree
(``git describe`` plus dirty flag, when available), and the library
versions that executed -- so any run is reproducible from its artifacts
alone, and two manifests differing only in timestamps provably ran the
same configuration (compare ``config_digest``).

The manifest lives at :func:`manifest_path` (``<trace>.manifest.json``)
and is written atomically like the trace itself.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time

from repro.obs.export import _atomic_write

SCHEMA_VERSION = 1


def manifest_path(trace_path):
    """Where the manifest for a trace file lives (same directory)."""
    return f"{os.fspath(trace_path)}.manifest.json"


#: Environment variables that change how a run executes; resolved into
#: every manifest so history records capture the execution environment,
#: not just the config mapping.
ENV_VARS = ("REPRO_BACKEND", "REPRO_SHARDS", "REPRO_CACHE_DIR",
            "REPRO_TRACE", "REPRO_HISTORY")


def _canonical(value):
    """Fold one config value into the JSON grammar, recursively:
    mappings sort by stringified key, sequences keep order, scalars
    pass through, and anything else goes through ``repr``. Nested
    mappings therefore digest identically regardless of insertion
    order -- the same guarantee the top level always had."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _canonical(value[k])
                for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return repr(value)


def config_digest(config):
    """Stable SHA-256 digest of a configuration mapping: canonical JSON
    (sorted keys at every nesting level, no whitespace variance),
    values outside the JSON grammar folded through :func:`_canonical`.
    Two runs with equal digests ran the same configuration."""
    clean = {str(k): _canonical(v) for k, v in dict(config).items()}
    canonical = json.dumps(clean, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def resolved_env():
    """``{name: value-or-None}`` for every :data:`ENV_VARS` entry, as
    resolved in this process."""
    return {name: os.environ.get(name) for name in ENV_VARS}


_GIT_DESCRIBE_CACHE = {}


def git_describe(cwd=None):
    """``git describe --always --dirty`` of the working tree, or None
    when git (or the repository) is unavailable.

    Memoized per (process, cwd): manifests are built per run, and a
    daemon recording history builds one per served request -- a
    subprocess spawn each would dwarf the recording cost the
    ``bench-history`` gate bounds. The tree state a process started
    from is the honest provenance for everything it computes anyway.
    """
    if cwd in _GIT_DESCRIBE_CACHE:
        return _GIT_DESCRIBE_CACHE[cwd]
    described = _git_describe_uncached(cwd)
    _GIT_DESCRIBE_CACHE[cwd] = described
    return described


def _git_describe_uncached(cwd):
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def build_manifest(command, argv, config, trace_file=None,
                   trace_format=None, extra=None):
    """The manifest dict for one run.

    Parameters
    ----------
    command:
        Subcommand name (``"score"``, ``"compare"``, ...).
    argv:
        The full argument vector as invoked.
    config:
        Mapping of resolved run knobs (seed, workers, cache, cache_dir,
        quick, ...); digested into ``config_digest``.
    trace_file / trace_format:
        The trace artifact this manifest accompanies.
    extra:
        Optional extra mapping merged in under ``"extra"``.
    """
    config = dict(config or {})
    versions = {"python": platform.python_version()}
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass
    try:
        from repro import __version__ as repro_version

        versions["repro"] = repro_version
    except ImportError:
        pass
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "command": command,
        "argv": list(argv),
        "config": config,
        "config_digest": config_digest(config),
        "env": resolved_env(),
        "trace_file": (None if trace_file is None
                       else os.path.basename(os.fspath(trace_file))),
        "trace_format": trace_format,
        "git_describe": git_describe(),
        "platform": platform.platform(),
        "versions": versions,
        "created_unix": time.time(),
    }
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def write_manifest(path, manifest):
    """Atomically write a manifest dict to ``path``; returns the path."""
    _atomic_write(path, json.dumps(manifest, indent=2, sort_keys=True)
                  + "\n")
    return path


def load_manifest(path):
    """Read a manifest back; raises ``ValueError`` on schema mismatch."""
    with open(path, encoding="utf-8") as f:
        manifest = json.load(f)
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: manifest schema {version!r} != {SCHEMA_VERSION}"
        )
    return manifest
