"""Run manifests: every trace ships with enough context to re-run it.

A trace file answers "where did the time go"; the manifest next to it
answers "what exactly ran". It records the full argv, the resolved
engine knobs (seed, workers, cache mode, cache dir, preset), a stable
SHA-256 digest of the configuration, the git state of the tree
(``git describe`` plus dirty flag, when available), and the library
versions that executed -- so any run is reproducible from its artifacts
alone, and two manifests differing only in timestamps provably ran the
same configuration (compare ``config_digest``).

The manifest lives at :func:`manifest_path` (``<trace>.manifest.json``)
and is written atomically like the trace itself.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time

from repro.obs.export import _atomic_write

SCHEMA_VERSION = 1


def manifest_path(trace_path):
    """Where the manifest for a trace file lives (same directory)."""
    return f"{os.fspath(trace_path)}.manifest.json"


def config_digest(config):
    """Stable SHA-256 digest of a configuration mapping: canonical JSON
    (sorted keys, no whitespace variance), values outside the JSON
    grammar folded through ``repr``. Two runs with equal digests ran
    the same configuration."""
    clean = {
        str(k): (v if isinstance(v, (bool, int, float, str))
                 or v is None else repr(v))
        for k, v in dict(config).items()
    }
    canonical = json.dumps(clean, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def git_describe(cwd=None):
    """``git describe --always --dirty`` of the working tree, or None
    when git (or the repository) is unavailable."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def build_manifest(command, argv, config, trace_file=None,
                   trace_format=None, extra=None):
    """The manifest dict for one run.

    Parameters
    ----------
    command:
        Subcommand name (``"score"``, ``"compare"``, ...).
    argv:
        The full argument vector as invoked.
    config:
        Mapping of resolved run knobs (seed, workers, cache, cache_dir,
        quick, ...); digested into ``config_digest``.
    trace_file / trace_format:
        The trace artifact this manifest accompanies.
    extra:
        Optional extra mapping merged in under ``"extra"``.
    """
    config = dict(config or {})
    versions = {"python": platform.python_version()}
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass
    try:
        from repro import __version__ as repro_version

        versions["repro"] = repro_version
    except ImportError:
        pass
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "command": command,
        "argv": list(argv),
        "config": config,
        "config_digest": config_digest(config),
        "trace_file": (None if trace_file is None
                       else os.path.basename(os.fspath(trace_file))),
        "trace_format": trace_format,
        "git_describe": git_describe(),
        "platform": platform.platform(),
        "versions": versions,
        "created_unix": time.time(),
    }
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def write_manifest(path, manifest):
    """Atomically write a manifest dict to ``path``; returns the path."""
    _atomic_write(path, json.dumps(manifest, indent=2, sort_keys=True)
                  + "\n")
    return path


def load_manifest(path):
    """Read a manifest back; raises ``ValueError`` on schema mismatch."""
    with open(path, encoding="utf-8") as f:
        manifest = json.load(f)
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: manifest schema {version!r} != {SCHEMA_VERSION}"
        )
    return manifest
