"""Human-readable trace summaries (``repro obs summary``).

Turns a JSONL span trace into the three questions an engine run
raises:

* **Where did the time go?** Top span names by *self time* -- a span's
  duration minus its same-process children (cross-process children run
  on an unrelated clock and overlap the owner anyway, so they are never
  subtracted; negatives clamp to zero).
* **Which cache tier served which kernel?** Every ``cache.lookup`` span
  carries ``kind`` (the kernel) and ``tier`` (``memory``/``disk``/
  ``miss``) attributes; the summary tabulates hit rates per kind.
* **Did the pool earn its keep?** Per ``parallel.map`` fan-out:
  dispatched task count, worker count, and utilization = summed
  worker-task busy time / (map wall time x workers).
* **Did the shards earn their keep?** Per ``shard.dispatch`` fan-out
  (DESIGN.md §14): blocks, failures, busy time and utilization for
  every shard daemon, so stragglers and dead shards are visible at a
  glance.
"""

from __future__ import annotations

from collections import defaultdict

from repro.obs.export import load_spans, load_spans_tolerant


def _fmt_ms(ns):
    return f"{ns / 1e6:10.3f}"


def self_times(spans):
    """``{sid: self_ns}``: duration minus same-pid children, >= 0."""
    child_ns = defaultdict(int)
    by_sid = {s.sid: s for s in spans}
    for span in spans:
        parent = by_sid.get(span.parent) if span.parent is not None \
            else None
        if parent is not None and parent.pid == span.pid:
            child_ns[parent.sid] += span.duration_ns
    return {
        s.sid: max(0, s.duration_ns - child_ns.get(s.sid, 0))
        for s in spans
    }


def aggregate_by_name(spans):
    """Per-name totals: ``{name: dict(count, total_ns, self_ns)}``."""
    selfs = self_times(spans)
    out = {}
    for span in spans:
        row = out.setdefault(span.name,
                             {"count": 0, "total_ns": 0, "self_ns": 0})
        row["count"] += 1
        row["total_ns"] += span.duration_ns
        row["self_ns"] += selfs[span.sid]
    return out


def cache_tiers(spans):
    """Per-kernel-kind tier counts from ``cache.lookup`` spans:
    ``{kind: {"memory": n, "disk": n, "miss": n}}``."""
    out = {}
    for span in spans:
        if span.name != "cache.lookup":
            continue
        kind = span.attrs.get("kind", "?")
        tier = span.attrs.get("tier", "?")
        out.setdefault(kind, defaultdict(int))[tier] += 1
    return {k: dict(v) for k, v in out.items()}


def pool_stats(spans):
    """Per ``parallel.map`` fan-out: tasks, workers, wall, busy,
    utilization (pooled fan-outs only -- inline maps have no workers)."""
    tasks_by_parent = defaultdict(int)
    busy_by_parent = defaultdict(int)
    for span in spans:
        if span.name == "worker.task" and span.parent is not None:
            tasks_by_parent[span.parent] += 1
            busy_by_parent[span.parent] += span.duration_ns
    out = []
    for span in spans:
        if span.name != "parallel.map":
            continue
        if span.attrs.get("inline"):
            continue
        workers = int(span.attrs.get("workers", 1))
        wall_ns = span.duration_ns
        busy_ns = busy_by_parent.get(span.sid, 0)
        capacity = wall_ns * workers
        out.append({
            "fn": span.attrs.get("fn", "?"),
            "tasks": int(span.attrs.get("tasks",
                                        tasks_by_parent.get(span.sid, 0))),
            "workers": workers,
            "wall_ns": wall_ns,
            "busy_ns": busy_ns,
            "utilization": (busy_ns / capacity) if capacity else 0.0,
        })
    return out


def shard_stats(spans):
    """Per ``shard.dispatch`` fan-out: one row per shard daemon with
    its block count, busy time, and utilization against the dispatch
    wall time. Block spans are executed on the coordinator's dispatch
    threads and adopted under the dispatch span, so grouping by parent
    sid reassembles each fan-out."""
    blocks_by_dispatch = defaultdict(lambda: defaultdict(
        lambda: {"blocks": 0, "busy_ns": 0, "failed": 0}))
    for span in spans:
        if span.name != "shard.block" or span.parent is None:
            continue
        row = blocks_by_dispatch[span.parent][
            span.attrs.get("shard", "?")]
        row["blocks"] += 1
        row["busy_ns"] += span.duration_ns
        if span.attrs.get("failed"):
            row["failed"] += 1
    out = []
    for span in spans:
        if span.name != "shard.dispatch":
            continue
        wall_ns = span.duration_ns
        for shard, row in sorted(blocks_by_dispatch.get(span.sid,
                                                        {}).items()):
            out.append({
                "shard": shard,
                "blocks": row["blocks"],
                "failed": row["failed"],
                "wall_ns": wall_ns,
                "busy_ns": row["busy_ns"],
                "utilization": (row["busy_ns"] / wall_ns) if wall_ns
                               else 0.0,
            })
    return out


def render_summary(spans, top=15):
    """The full ``repro obs summary`` report for a span list."""
    if not spans:
        return "empty trace: no spans"
    lines = []
    pids = sorted({s.pid for s in spans})
    total_ns = sum(s.duration_ns for s in spans if s.parent is None)
    lines.append(
        f"trace summary: {len(spans)} spans across {len(pids)} "
        f"process(es); root wall time {total_ns / 1e6:.3f} ms"
    )

    lines.append("")
    lines.append(f"top {top} span names by self time:")
    lines.append(f"  {'name':<28} {'count':>6} {'self ms':>10} "
                 f"{'total ms':>10} {'mean us':>9}")
    rows = sorted(aggregate_by_name(spans).items(),
                  key=lambda kv: (-kv[1]["self_ns"], kv[0]))
    for name, row in rows[:top]:
        mean_us = row["total_ns"] / row["count"] / 1e3
        lines.append(
            f"  {name:<28} {row['count']:>6} {_fmt_ms(row['self_ns'])} "
            f"{_fmt_ms(row['total_ns'])} {mean_us:>9.1f}"
        )

    tiers = cache_tiers(spans)
    if tiers:
        lines.append("")
        lines.append("cache lookups by kernel and tier:")
        lines.append(f"  {'kind':<22} {'memory':>7} {'disk':>6} "
                     f"{'miss':>6} {'hit rate':>9}")
        for kind in sorted(tiers):
            counts = tiers[kind]
            memory = counts.get("memory", 0)
            disk = counts.get("disk", 0)
            miss = counts.get("miss", 0)
            lookups = memory + disk + miss
            rate = (memory + disk) / lookups if lookups else 0.0
            lines.append(
                f"  {kind:<22} {memory:>7} {disk:>6} {miss:>6} "
                f"{rate:>8.1%}"
            )

    pools = pool_stats(spans)
    if pools:
        lines.append("")
        lines.append("pool fan-outs (parallel.map):")
        lines.append(f"  {'fn':<28} {'tasks':>6} {'workers':>8} "
                     f"{'wall ms':>10} {'busy ms':>10} {'util':>6}")
        for row in pools:
            lines.append(
                f"  {row['fn']:<28} {row['tasks']:>6} "
                f"{row['workers']:>8} {_fmt_ms(row['wall_ns'])} "
                f"{_fmt_ms(row['busy_ns'])} {row['utilization']:>5.0%}"
            )

    shards = shard_stats(spans)
    if shards:
        lines.append("")
        lines.append("shard fan-outs (shard.dispatch):")
        lines.append(f"  {'shard':<24} {'blocks':>6} {'failed':>6} "
                     f"{'wall ms':>10} {'busy ms':>10} {'util':>6}")
        for row in shards:
            lines.append(
                f"  {row['shard']:<24} {row['blocks']:>6} "
                f"{row['failed']:>6} {_fmt_ms(row['wall_ns'])} "
                f"{_fmt_ms(row['busy_ns'])} {row['utilization']:>5.0%}"
            )
    return "\n".join(lines)


def summarize_file(path, top=15):
    """Load a JSONL trace and render its summary.

    Uses the tolerant loader: an in-flight run's partial tail line is
    skipped and noted under the report instead of killing the summary
    (mid-file corruption still raises ``ValueError``, as does a
    Chrome-format trace).
    """
    spans, skipped_tail = load_spans_tolerant(path)
    report = render_summary(spans, top=top)
    if skipped_tail:
        report += (f"\n\nnote: skipped {skipped_tail} partial line(s) at "
                   f"end of trace (run still in flight?)")
    return report
