"""Observability for the scoring pipeline (DESIGN.md section 10).

* :mod:`repro.obs.trace` -- nested, ``perf_counter_ns``-timestamped
  spans with attributes; a thread-safe in-process collector; a shared
  no-op handle that makes permanently-wired instrumentation free while
  tracing is off; and cross-process collection (workers buffer spans
  locally, ship them back piggybacked on task results through the
  parallel transport, and the owner re-parents them under the
  dispatching ``parallel.map`` span).
* :mod:`repro.obs.metrics` -- the unified
  :class:`~repro.obs.metrics.MetricsRegistry` (counters / gauges /
  histograms) behind every engine-layer counter: kernel-cache hits,
  disk-tier traffic, shm publishes, pool lifecycle events.
  ``SuiteScorecard.details["engine"]`` is a ``snapshot()``/``delta()``
  view over it.
* :mod:`repro.obs.export` -- JSONL span logs and Chrome
  ``chrome://tracing`` trace-event JSON.
* :mod:`repro.obs.manifest` -- run manifests written next to every
  trace: argv, resolved config + digest, git describe, versions.
* :mod:`repro.obs.summary` -- the ``repro obs summary`` report: top
  spans by self time, per-kernel cache-tier hit rates, pool
  utilization.
* :mod:`repro.obs.history` -- the longitudinal layer (DESIGN.md
  section 15): an append-only run-history store keyed by config
  digest, bit-exact run diffing over the wire-format hex bits, and
  trajectory regression gates (``repro obs history`` / ``diff`` /
  ``check``).

The hard invariant (enforced by ``repro qa``): tracing on vs off is
bit-identical in every score output, and so is history recording on
vs off (``repro qa --history``). Spans and history records observe;
they never perturb.
"""

from repro.obs.export import (
    FORMAT_CHROME,
    FORMAT_JSONL,
    FORMATS,
    chrome_events,
    load_spans,
    load_spans_tolerant,
    write_trace,
)
from repro.obs.history import (
    HistoryRecorder,
    HistoryStore,
    RunDiff,
    TrajectoryFinding,
    build_record,
    check_store,
    check_trajectory,
    current_recorder,
    diff_records,
    install_recorder,
    publish,
    render_diff,
    render_history,
    uninstall_recorder,
    window_trajectory,
)
from repro.obs.manifest import (
    build_manifest,
    config_digest,
    load_manifest,
    manifest_path,
    resolved_env,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.summary import render_summary, summarize_file
from repro.obs.trace import (
    NOOP_SPAN,
    ShippedSpans,
    SpanRecord,
    Tracer,
    current_tracer,
    enabled,
    install,
    span,
    swap,
    uninstall,
    validate_spans,
)

__all__ = [
    "FORMAT_CHROME",
    "FORMAT_JSONL",
    "FORMATS",
    "NOOP_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "HistoryRecorder",
    "HistoryStore",
    "MetricsRegistry",
    "MetricsSnapshot",
    "RunDiff",
    "ShippedSpans",
    "SpanRecord",
    "Tracer",
    "TrajectoryFinding",
    "build_manifest",
    "build_record",
    "check_store",
    "check_trajectory",
    "chrome_events",
    "config_digest",
    "current_recorder",
    "current_tracer",
    "diff_records",
    "enabled",
    "install",
    "install_recorder",
    "load_manifest",
    "load_spans",
    "load_spans_tolerant",
    "manifest_path",
    "publish",
    "render_diff",
    "render_history",
    "render_summary",
    "resolved_env",
    "span",
    "summarize_file",
    "swap",
    "uninstall",
    "uninstall_recorder",
    "validate_spans",
    "window_trajectory",
    "write_manifest",
    "write_trace",
]
