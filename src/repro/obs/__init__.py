"""Observability for the scoring pipeline (DESIGN.md section 10).

* :mod:`repro.obs.trace` -- nested, ``perf_counter_ns``-timestamped
  spans with attributes; a thread-safe in-process collector; a shared
  no-op handle that makes permanently-wired instrumentation free while
  tracing is off; and cross-process collection (workers buffer spans
  locally, ship them back piggybacked on task results through the
  parallel transport, and the owner re-parents them under the
  dispatching ``parallel.map`` span).
* :mod:`repro.obs.metrics` -- the unified
  :class:`~repro.obs.metrics.MetricsRegistry` (counters / gauges /
  histograms) behind every engine-layer counter: kernel-cache hits,
  disk-tier traffic, shm publishes, pool lifecycle events.
  ``SuiteScorecard.details["engine"]`` is a ``snapshot()``/``delta()``
  view over it.
* :mod:`repro.obs.export` -- JSONL span logs and Chrome
  ``chrome://tracing`` trace-event JSON.
* :mod:`repro.obs.manifest` -- run manifests written next to every
  trace: argv, resolved config + digest, git describe, versions.
* :mod:`repro.obs.summary` -- the ``repro obs summary`` report: top
  spans by self time, per-kernel cache-tier hit rates, pool
  utilization.

The hard invariant (enforced by ``repro qa``): tracing on vs off is
bit-identical in every score output. Spans observe; they never perturb.
"""

from repro.obs.export import (
    FORMAT_CHROME,
    FORMAT_JSONL,
    FORMATS,
    chrome_events,
    load_spans,
    write_trace,
)
from repro.obs.manifest import (
    build_manifest,
    config_digest,
    load_manifest,
    manifest_path,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.summary import render_summary, summarize_file
from repro.obs.trace import (
    NOOP_SPAN,
    ShippedSpans,
    SpanRecord,
    Tracer,
    current_tracer,
    enabled,
    install,
    span,
    swap,
    uninstall,
    validate_spans,
)

__all__ = [
    "FORMAT_CHROME",
    "FORMAT_JSONL",
    "FORMATS",
    "NOOP_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ShippedSpans",
    "SpanRecord",
    "Tracer",
    "build_manifest",
    "chrome_events",
    "config_digest",
    "current_tracer",
    "enabled",
    "install",
    "load_manifest",
    "load_spans",
    "manifest_path",
    "render_summary",
    "span",
    "summarize_file",
    "swap",
    "uninstall",
    "validate_spans",
    "write_manifest",
    "write_trace",
]
