"""Longitudinal run history: persist, diff, and gate scorecards over
time (DESIGN.md section 15).

Every ``score``/``compare``/``subset``/``experiment`` run computes a
scorecard and throws it away; nothing in the system could answer "did
this suite's scores (or this repo's performance) drift since last
week?". This module is the missing memory:

* :class:`HistoryStore` -- an append-only directory of per-run JSON
  records, keyed by the run manifest's ``config_digest``. A record
  carries the full scorecard with every float in the wire encoding
  (plain JSON number + little-endian IEEE-754 hex bits, exactly the
  :mod:`repro.service.protocol` convention), the
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot (cache tiers,
  pool/shard utilization), per-span-name wall/self-time totals from
  the tracer, and the run manifest itself -- enough to re-key, re-plot
  and bit-diff any run from its artifact alone.
* :class:`HistoryRecorder` -- the in-process collection hook. Like the
  span tracer, it installs as a module global; scoring handlers call
  :func:`publish` unconditionally (a no-op while no recorder is
  installed), so recording can never perturb a result -- ``repro qa
  --history`` enforces the consequence at the bit level.
* :func:`diff_records` -- **bit-exact** score diffing through the hex
  bit patterns (never through re-parsed floats): under an equal
  ``config_digest``, any changed bit is a determinism regression, not
  noise. Perf metrics (wall time, cache hit rates) are *tolerance*
  quantities and diff as relative deltas instead.
* :func:`check_trajectory` -- scan one digest's run sequence and flag
  score drift (always fatal) or perf regressions beyond configurable
  thresholds (warm-run wall time, cache hit rate) -- the ``repro obs
  check`` CI gate.
* :func:`window_trajectory` -- trajectories *inside* a single run: as
  the interval sampler's counter windows accumulate workload rows,
  cumulative prefixes of the suite are scored incrementally through
  the precompute-and-slice machinery
  (:class:`~repro.engine.subset_eval.SubsetEvaluator` -- full-suite
  kernels computed once, every window scored by index slicing), so one
  record shows how the scores converged as the suite filled in.

Surfaced as ``--history-dir`` / ``$REPRO_HISTORY`` on every scoring
subcommand plus ``repro obs history`` (list trajectories),
``repro obs diff`` (bit-exact two-run diff) and ``repro obs check``
(regression gate); the scoring daemon records served runs into the
same store and lists them at ``GET /v1/history``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field

from repro.obs.export import _atomic_write
from repro.obs.summary import aggregate_by_name

SCHEMA_VERSION = 1

#: Environment variable naming the default history directory.
HISTORY_ENV = "REPRO_HISTORY"

#: Default perf-regression thresholds for :func:`check_trajectory`.
#: Wall time is compared against the best (fastest) earlier run of the
#: same digest -- the "warm-run wall time" gate -- and hit rates
#: against the best earlier rate.
MAX_WALL_REGRESSION_PCT = 25.0
MAX_HIT_RATE_DROP = 0.10

_SCORES = ("cluster", "trend", "coverage", "spread")


# -- recorder -----------------------------------------------------------------


class HistoryRecorder:
    """Collects one run's scoring artifacts until the record is built.

    Handlers publish live objects (scorecards, subset reports, search
    results, window trajectories, rendered report text, a metrics
    snapshot); :func:`build_record` encodes them into the JSON-safe,
    bit-exact record shape. Publishing only ever appends to these
    lists -- it reads nothing back -- so an installed recorder cannot
    change any output bit.
    """

    def __init__(self):
        self.scorecards = []
        self.subset_reports = []
        self.search_results = []
        self.windows = []
        self.rendered = []
        self.metrics_snapshot = None

    def publish(self, kind, obj):
        if kind == "scorecard":
            self.scorecards.append(obj)
        elif kind == "subset_report":
            self.subset_reports.append(obj)
        elif kind == "search_result":
            self.search_results.append(obj)
        elif kind == "windows":
            self.windows.extend(obj)
        elif kind == "rendered":
            self.rendered.append(str(obj))
        elif kind == "metrics":
            self.metrics_snapshot = obj
        else:
            raise ValueError(f"unknown history publish kind {kind!r}")


_RECORDER = None


def install_recorder(recorder=None):
    """Install (and return) the process-wide history recorder."""
    global _RECORDER
    _RECORDER = recorder if recorder is not None else HistoryRecorder()
    return _RECORDER


def uninstall_recorder():
    """Remove the installed recorder (idempotent)."""
    global _RECORDER
    _RECORDER = None


def current_recorder():
    """The installed :class:`HistoryRecorder`, or ``None``."""
    return _RECORDER


def publish(kind, obj):
    """Hand one artifact to the installed recorder; no-op without one.

    Safe to wire permanently into handlers, exactly like
    :func:`repro.obs.trace.span`: one module-global read when recording
    is off.
    """
    if _RECORDER is not None:
        _RECORDER.publish(kind, obj)


# -- record building ----------------------------------------------------------


def _rendered_sha256(texts):
    digest = hashlib.sha256()
    for text in texts:
        digest.update(text.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def build_record(command, manifest, recorder, spans=None, wall_s=None):
    """The JSON-safe history record for one finished run.

    Parameters
    ----------
    command:
        Subcommand name (``"score"``, ``"serve:score"``, ...).
    manifest:
        The run manifest (:func:`repro.obs.manifest.build_manifest`);
        its ``config_digest`` keys the record's trajectory.
    recorder:
        The :class:`HistoryRecorder` the run published into.
    spans:
        Finished :class:`~repro.obs.trace.SpanRecord` list; aggregated
        into per-name wall/self-time totals (empty when untraced).
    wall_s:
        End-to-end run wall time in seconds, measured by the caller.
    """
    # Lazy: repro.service.app pulls repro.obs in at import time, so the
    # obs package must not import repro.service back at module level.
    from repro.service import protocol

    cards = [protocol.encode_scorecard(c) for c in recorder.scorecards]
    rendered = [card["rendered"] for card in cards]
    rendered.extend(str(r) for r in recorder.subset_reports)
    rendered.extend(str(r) for r in recorder.search_results)
    rendered.extend(recorder.rendered)
    snapshot = recorder.metrics_snapshot
    record = {
        "schema_version": SCHEMA_VERSION,
        "command": command,
        "config_digest": manifest["config_digest"],
        "manifest": dict(manifest),
        "scorecards": cards,
        "subset_reports": [protocol.encode_subset_report(r)
                           for r in recorder.subset_reports],
        "search_results": [protocol.encode_search_result(r)
                           for r in recorder.search_results],
        "windows": list(recorder.windows),
        "rendered_sha256": _rendered_sha256(rendered),
        "metrics": (None if snapshot is None else
                    {"values": dict(snapshot.values),
                     "kinds": dict(snapshot.kinds)}),
        "self_times": aggregate_by_name(spans or []),
        "wall_time_s": None if wall_s is None else float(wall_s),
        "created_unix": time.time(),
    }
    return record


# -- the store ----------------------------------------------------------------


class HistoryStore:
    """Append-only directory of run records.

    One JSON file per run, named ``run-<seq>-<digest12>.json``: the
    sequence number orders the trajectory, the digest prefix makes
    ``ls`` group related runs visually. Appends reserve the name with
    ``O_EXCL`` (two concurrent writers can never claim the same run
    id) and land the content with an atomic replace, so a crash
    mid-append never leaves a half-written record under a claimed
    name.
    """

    def __init__(self, root):
        self.root = os.fspath(root)

    def _paths(self):
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return []
        return sorted(
            os.path.join(self.root, n) for n in names
            if n.startswith("run-") and n.endswith(".json")
        )

    def __len__(self):
        return len(self._paths())

    def _next_seq(self):
        best = 0
        for path in self._paths():
            parts = os.path.basename(path).split("-")
            try:
                best = max(best, int(parts[1]))
            except (IndexError, ValueError):
                continue
        return best + 1

    def append(self, record):
        """Assign the next run id, persist the record, return its path
        (``record['run_id']`` is filled in)."""
        os.makedirs(self.root, exist_ok=True)
        digest12 = str(record.get("config_digest", ""))[:12] or "nodigest"
        seq = self._next_seq()
        while True:
            run_id = f"run-{seq:06d}-{digest12}"
            path = os.path.join(self.root, f"{run_id}.json")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                seq += 1
                continue
            os.close(fd)
            break
        record = dict(record, run_id=run_id)
        _atomic_write(path, json.dumps(record, indent=2, sort_keys=True)
                      + "\n")
        return path

    def run_ids(self):
        """All run ids, oldest first."""
        return [os.path.basename(p)[:-5] for p in self._paths()]

    def load(self, run_id):
        """One record by run id (``run-000001-ab12...``), bare sequence
        number (``1``), or unique prefix."""
        wanted = str(run_id)
        ids = self.run_ids()
        if wanted.isdigit():
            seq = int(wanted)
            matches = [r for r in ids
                       if r.split("-")[1] == f"{seq:06d}"]
        else:
            matches = [r for r in ids if r == wanted]
            if not matches:
                matches = [r for r in ids if r.startswith(wanted)]
        if not matches:
            raise KeyError(f"no run {run_id!r} in {self.root}")
        if len(matches) > 1:
            raise KeyError(f"run id {run_id!r} is ambiguous in "
                           f"{self.root}: {matches}")
        path = os.path.join(self.root, f"{matches[0]}.json")
        with open(path, encoding="utf-8") as f:
            record = json.load(f)
        version = record.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(f"{path}: history schema {version!r} != "
                             f"{SCHEMA_VERSION}")
        return record

    def runs(self):
        """All records, oldest first."""
        return [self.load(run_id) for run_id in self.run_ids()]

    def trajectories(self):
        """``{config_digest: [records, oldest first]}`` preserving
        first-seen digest order."""
        out = {}
        for record in self.runs():
            out.setdefault(record.get("config_digest", "?"),
                           []).append(record)
        return out


# -- bit-exact diffing --------------------------------------------------------


def _bits_of(record):
    """Flatten every bit-pattern hex in a record into one ordered
    ``{label: hexbits}`` map -- the comparison surface of the bit-exact
    diff. Labels are stable and human-readable (``scorecards[0].
    score_bits.cluster``)."""
    out = {}

    def _take_map(label, mapping):
        for key in sorted(mapping):
            out[f"{label}.{key}"] = mapping[key]

    for i, card in enumerate(record.get("scorecards", ())):
        label = f"scorecards[{i}]"
        _take_map(f"{label}.score_bits", card.get("score_bits", {}))
        details = card.get("details", {})
        for name, attr in (("cluster", "per_k_bits"),
                           ("trend", "per_event_bits"),
                           ("spread", "per_item_bits")):
            detail = details.get(name)
            if detail is not None:
                _take_map(f"{label}.{name}.{attr}", detail.get(attr, {}))
        coverage = details.get("coverage")
        if coverage is not None:
            for j, bits in enumerate(
                    coverage.get("component_variance_bits", ())):
                out[f"{label}.coverage.component_variance_bits[{j}]"] = \
                    bits
    for i, report in enumerate(record.get("subset_reports", ())):
        label = f"subset_reports[{i}]"
        for name in ("full_score_bits", "subset_score_bits",
                     "deviation_bits"):
            _take_map(f"{label}.{name}", report.get(name, {}))
        out[f"{label}.mean_deviation_pct_bits"] = \
            report.get("mean_deviation_pct_bits")
    for i, result in enumerate(record.get("search_results", ())):
        label = f"search_results[{i}]"
        out[f"{label}.best.selected"] = \
            ",".join(result.get("best", {}).get("selected", ()))
        best = result.get("best", {})
        for name in ("full_score_bits", "subset_score_bits",
                     "deviation_bits"):
            _take_map(f"{label}.best.{name}", best.get(name, {}))
        out[f"{label}.best.mean_deviation_pct_bits"] = \
            best.get("mean_deviation_pct_bits")
    for i, window in enumerate(record.get("windows", ())):
        _take_map(f"windows[{i}].score_bits",
                  window.get("score_bits", {}))
    out["rendered_sha256"] = record.get("rendered_sha256")
    return out


def _hit_rate(record):
    """The warm-tier hit rate of a record's metrics snapshot: lookups
    served by the in-memory *or* the disk tier, over all lookups --
    the same semantics ``repro obs summary`` tabulates. (A disk-warm
    run legitimately trades memory hits for disk hits; only falling
    through to an actual compute is a cold lookup.)"""
    metrics = record.get("metrics") or {}
    values = metrics.get("values") or {}
    hits = values.get("cache_hits")
    misses = values.get("cache_misses")
    if hits is None and misses is None:
        return None
    lookups = (hits or 0) + (misses or 0)
    if not lookups:
        return None
    warm = (hits or 0) + (values.get("disk_hits") or 0)
    return warm / lookups


@dataclass(frozen=True)
class RunDiff:
    """Outcome of a two-record comparison.

    ``drift`` lists every bit-level difference (label + both hex
    patterns); under an equal ``config_digest`` any entry is a
    determinism regression. ``perf`` carries the tolerance-based
    deltas (wall time, hit rates) -- informational here, thresholded
    by :func:`check_trajectory`.
    """

    run_a: str
    run_b: str
    same_digest: bool
    drift: tuple
    perf: dict = field(default_factory=dict)

    @property
    def clean(self):
        return not self.drift


def diff_records(a, b):
    """Bit-exact diff of two history records.

    Scores are compared as hex bit patterns -- the floats are never
    re-parsed, so NaN payloads, signed zeros and formatting can neither
    hide nor fake a change. Perf quantities (wall time, cache hit
    rates) compare as relative deltas in :attr:`RunDiff.perf`.
    """
    bits_a, bits_b = _bits_of(a), _bits_of(b)
    drift = []
    for label in sorted(set(bits_a) | set(bits_b)):
        va, vb = bits_a.get(label), bits_b.get(label)
        if va != vb:
            drift.append(f"{label}: {va or '<absent>'} != "
                         f"{vb or '<absent>'}")
    perf = {}
    wall_a, wall_b = a.get("wall_time_s"), b.get("wall_time_s")
    if wall_a and wall_b:
        perf["wall_time_s"] = (wall_a, wall_b)
        perf["wall_delta_pct"] = 100.0 * (wall_b - wall_a) / wall_a
    rate_a, rate_b = _hit_rate(a), _hit_rate(b)
    if rate_a is not None or rate_b is not None:
        perf["warm_hit_rate"] = (rate_a, rate_b)
    return RunDiff(
        run_a=a.get("run_id", "?"),
        run_b=b.get("run_id", "?"),
        same_digest=(a.get("config_digest") == b.get("config_digest")),
        drift=tuple(drift),
        perf=perf,
    )


def render_diff(diff):
    """Human report for one :class:`RunDiff`."""
    lines = [f"history diff: {diff.run_a} vs {diff.run_b} "
             f"({'equal' if diff.same_digest else 'DIFFERENT'} config "
             f"digest)"]
    if diff.clean:
        lines.append("  scores: bit-identical (zero drift)")
    else:
        head = ("DETERMINISM REGRESSION" if diff.same_digest
                else "score drift (configs differ; expected)")
        lines.append(f"  scores: {head} -- "
                     f"{len(diff.drift)} changed bit pattern(s)")
        lines.extend(f"    {entry}" for entry in diff.drift[:20])
        if len(diff.drift) > 20:
            lines.append(f"    ... and {len(diff.drift) - 20} more")
    if "wall_delta_pct" in diff.perf:
        wall_a, wall_b = diff.perf["wall_time_s"]
        lines.append(f"  wall time: {wall_a:.3f} s -> {wall_b:.3f} s "
                     f"({diff.perf['wall_delta_pct']:+.1f}%)")
    if "warm_hit_rate" in diff.perf:
        rate_a, rate_b = diff.perf["warm_hit_rate"]

        def _fmt(rate):
            return "n/a" if rate is None else f"{rate:.1%}"

        lines.append(f"  warm-tier hit rate: {_fmt(rate_a)} -> "
                     f"{_fmt(rate_b)}")
    return "\n".join(lines)


# -- trajectory checking ------------------------------------------------------


@dataclass(frozen=True)
class TrajectoryFinding:
    """One regression flagged by :func:`check_trajectory`."""

    run_id: str
    kind: str  # "score-drift" | "wall-regression" | "hit-rate-drop"
    message: str

    def __str__(self):
        return f"[{self.kind}] {self.run_id}: {self.message}"


def check_trajectory(records, max_wall_pct=MAX_WALL_REGRESSION_PCT,
                     max_hit_drop=MAX_HIT_RATE_DROP):
    """Scan one digest's run sequence (oldest first) for regressions.

    * **Score drift** -- every run must be bit-identical to the
      trajectory's first run; the records share a config digest, so any
      changed bit is a determinism regression (no threshold).
    * **Wall regression** -- a run slower than the best earlier run by
      more than ``max_wall_pct`` percent. Comparing against the *best*
      makes this the warm-run gate: once a warm run has shown how fast
      the config can be, later runs may not quietly give that back.
    * **Hit-rate drop** -- a warm-tier hit rate (lookups served by the
      in-memory or disk tier, over all lookups) more than
      ``max_hit_drop`` (absolute) below the best earlier rate.

    Pass ``None`` for either threshold to disable that check.
    """
    findings = []
    if len(records) < 2:
        return findings
    baseline = records[0]
    best_wall = baseline.get("wall_time_s")
    best_rate = _hit_rate(baseline)
    for record in records[1:]:
        run_id = record.get("run_id", "?")
        diff = diff_records(baseline, record)
        if diff.drift:
            findings.append(TrajectoryFinding(
                run_id=run_id, kind="score-drift",
                message=(f"{len(diff.drift)} bit pattern(s) changed vs "
                         f"{baseline.get('run_id', '?')} under an equal "
                         f"config digest (first: {diff.drift[0]})"),
            ))
        wall = record.get("wall_time_s")
        if max_wall_pct is not None and wall and best_wall:
            limit = best_wall * (1.0 + max_wall_pct / 100.0)
            if wall > limit:
                findings.append(TrajectoryFinding(
                    run_id=run_id, kind="wall-regression",
                    message=(f"wall time {wall:.3f} s exceeds best "
                             f"earlier {best_wall:.3f} s by more than "
                             f"{max_wall_pct:.0f}%"),
                ))
        if wall:
            best_wall = wall if best_wall is None else min(best_wall,
                                                           wall)
        rate = _hit_rate(record)
        if max_hit_drop is not None and rate is not None \
                and best_rate is not None \
                and rate < best_rate - max_hit_drop:
            findings.append(TrajectoryFinding(
                run_id=run_id, kind="hit-rate-drop",
                message=(f"warm-tier hit rate {rate:.1%} fell more "
                         f"than {max_hit_drop:.0%} below best earlier "
                         f"{best_rate:.1%}"),
            ))
        if rate is not None:
            best_rate = rate if best_rate is None else max(best_rate,
                                                           rate)
    return findings


def check_store(store, digest=None, max_wall_pct=MAX_WALL_REGRESSION_PCT,
                max_hit_drop=MAX_HIT_RATE_DROP):
    """Run :func:`check_trajectory` over every trajectory in a store
    (or just ``digest``'s); returns the combined finding list."""
    findings = []
    for run_digest, records in store.trajectories().items():
        if digest is not None and not run_digest.startswith(digest):
            continue
        findings.extend(check_trajectory(records,
                                         max_wall_pct=max_wall_pct,
                                         max_hit_drop=max_hit_drop))
    return findings


# -- trajectory listing -------------------------------------------------------


def _record_scores(record):
    """``{score: (value, bits)}`` of a record's first scorecard (or the
    first window-less artifact that carries scores); empty otherwise."""
    cards = record.get("scorecards") or ()
    if cards:
        card = cards[0]
        return {
            name: (card.get("scores", {}).get(name),
                   card.get("score_bits", {}).get(name))
            for name in _SCORES
        }
    return {}


def render_history(store, digest=None):
    """The ``repro obs history`` report: every trajectory (grouped by
    config digest), one line per run, plus per-score sparkline-style
    drift strips (``*`` first run, ``=`` bit-equal to the previous run,
    ``!`` drift)."""
    trajectories = store.trajectories()
    if digest is not None:
        trajectories = {d: records
                        for d, records in trajectories.items()
                        if d.startswith(digest)}
    if not trajectories:
        return "history: no recorded runs"
    lines = []
    for run_digest, records in trajectories.items():
        commands = sorted({r.get("command", "?") for r in records})
        lines.append(f"config {run_digest[:12]} "
                     f"({', '.join(commands)}; {len(records)} run(s)):")
        bits_seq = [_bits_of(r) for r in records]
        strips = {}
        for name in _SCORES:
            strip = []
            for i, record in enumerate(records):
                scores = _record_scores(record)
                if name not in scores or scores[name][1] is None:
                    strip.append(" ")
                elif i == 0:
                    strip.append("*")
                else:
                    key = f"scorecards[0].score_bits.{name}"
                    strip.append("=" if bits_seq[i].get(key)
                                 == bits_seq[i - 1].get(key) else "!")
            if strip and set(strip) != {" "}:
                strips[name] = "".join(strip)
        for name, strip in strips.items():
            latest = _record_scores(records[-1]).get(name)
            value = ("" if latest is None or latest[0] is None
                     else f"  latest={latest[0]:.4f}")
            lines.append(f"  {name:<9} {strip}{value}")
        identical = ["*"] + [
            "=" if bits_seq[i] == bits_seq[i - 1] else "!"
            for i in range(1, len(records))
        ]
        lines.append(f"  {'all bits':<9} {''.join(identical)}")
        for record in records:
            wall = record.get("wall_time_s")
            wall_text = "     n/a" if wall is None else f"{wall:8.3f}"
            created = record.get("created_unix")
            when = ("" if created is None else time.strftime(
                "%Y-%m-%d %H:%M:%S", time.gmtime(created)))
            lines.append(f"    {record.get('run_id', '?'):<28} "
                         f"{record.get('command', '?'):<14} "
                         f"wall {wall_text} s  {when}")
        lines.append("")
    return "\n".join(lines).rstrip()


# -- windowed trajectories inside one run -------------------------------------


def window_trajectory(matrix, seed=0, n_windows=4, engine=None):
    """Score cumulative windows of one measured suite incrementally.

    The interval sampler delivers one counter window per measured
    workload; this scores the accumulated matrix after each window of
    arrivals -- the streaming-ingestion view of a run -- without
    recomputing any kernel: a single
    :class:`~repro.engine.subset_eval.SubsetEvaluator` precomputes the
    full-suite kernels once and every cumulative prefix is evaluated
    by index slicing (bit-identical to scoring the prefix directly
    under shared bounds, per the DESIGN.md section 8 contract).

    Returns a list of window dicts, each carrying the prefix size and
    the four scores as plain floats plus IEEE-754 hex bits, ready to
    embed in a history record. The final window covers the whole suite.
    """
    from repro.engine.subset_eval import SubsetEvaluator
    from repro.service.protocol import float_bits

    names = list(matrix.workloads)
    n = len(names)
    if n < 2:
        raise ValueError("window trajectories need at least 2 workloads")
    n_windows = max(1, min(int(n_windows), n - 1))
    sizes = sorted({
        max(2, round(2 + (n - 2) * (i + 1) / n_windows))
        for i in range(n_windows)
    })
    if sizes[-1] != n:
        sizes.append(n)
    evaluator = SubsetEvaluator(matrix, seed=seed, engine=engine)
    windows = []
    for index, size in enumerate(sizes):
        report = evaluator.evaluate(names[:size])
        scores = {name: float(value)
                  for name, value in report.subset_scores.items()}
        windows.append({
            "window": index,
            "workloads": size,
            "scores": scores,
            "score_bits": {name: float_bits(value)
                           for name, value in scores.items()},
        })
    return windows
