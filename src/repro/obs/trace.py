"""Span tracing for the scoring pipeline.

A *span* is one timed region of work -- nested, attributed, and
timestamped with :func:`time.perf_counter_ns`. The tracer follows three
rules that make it safe to leave permanently wired into the hot paths:

* **Zero-cost when disabled.** :func:`span` reads one module global; if
  no tracer is installed it returns a shared no-op handle whose
  ``__enter__``/``__exit__``/``set`` do nothing. No span object, no
  timestamps, no allocation beyond the (empty) kwargs dict at the call
  site. The ``BENCH_obs.json`` gate holds this path under 1% of a full
  score run.
* **Observe, never perturb.** Instrumented code must not branch on
  tracing state, draw RNG values for span ids, or read wall-clock time
  in a way that feeds results. Span ids are sequential per tracer;
  timestamps come from the monotonic ``perf_counter_ns`` clock and go
  nowhere near score outputs. ``repro qa`` enforces the consequence:
  scorecards with tracing on are bit-identical to tracing off.
* **Thread-safe collection, process-aware trees.** Finished spans land
  in a list guarded by a lock; the *open*-span stack is thread-local,
  so concurrent threads nest correctly. Each span records its ``pid``
  (and thread id), because worker processes run their own tracer and
  ship finished spans back piggybacked on task results
  (:class:`ShippedSpans`); the owner re-parents them under the
  dispatching ``parallel.map`` span via :meth:`Tracer.adopt`. Clocks
  are per-process, so duration math (summary self-time) only ever
  subtracts same-pid children.

Usage::

    from repro.obs import span, install, uninstall, Tracer

    tracer = Tracer()
    install(tracer)
    with span("kernel.trend", events=4) as sp:
        ...
        sp.set(pending=2)       # attach attributes discovered mid-span
    uninstall()
    tracer.spans()              # finished SpanRecords
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from time import perf_counter_ns


@dataclass
class SpanRecord:
    """One finished (or still-open) span.

    ``sid``/``parent`` are tracer-local integers (``parent is None`` for
    roots); ``start_ns``/``end_ns`` are ``perf_counter_ns`` readings in
    the recording process's clock domain, which ``pid`` identifies.
    """

    sid: int
    parent: int | None
    name: str
    start_ns: int
    end_ns: int = 0
    pid: int = 0
    tid: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ns(self):
        return max(0, self.end_ns - self.start_ns)

    @property
    def closed(self):
        return self.end_ns >= self.start_ns > 0

    def as_dict(self):
        return {
            "sid": self.sid,
            "parent": self.parent,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            sid=int(data["sid"]),
            parent=(None if data.get("parent") is None
                    else int(data["parent"])),
            name=str(data["name"]),
            start_ns=int(data["start_ns"]),
            end_ns=int(data["end_ns"]),
            pid=int(data.get("pid", 0)),
            tid=int(data.get("tid", 0)),
            attrs=dict(data.get("attrs", {})),
        )


@dataclass
class ShippedSpans:
    """A worker task's result with its locally-buffered spans attached
    -- the cross-process span transport payload. The parallel executor
    unwraps ``result`` and feeds ``spans`` to :meth:`Tracer.adopt`."""

    result: object
    spans: list


class _SpanHandle:
    """Context manager for one open span of a real tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self._span = span

    @property
    def sid(self):
        return self._span.sid

    def set(self, **attrs):
        """Attach attributes to the open span."""
        self._span.attrs.update(attrs)
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self._tracer._finish(self._span)
        return False


class _NoopSpan:
    """The shared do-nothing handle returned while tracing is off."""

    __slots__ = ()
    sid = None

    def set(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Thread-safe in-process span collector."""

    def __init__(self):
        self._lock = threading.Lock()
        self._finished = []
        self._next_sid = 1
        self._stack = threading.local()
        self._pid = os.getpid()

    # -- recording ---------------------------------------------------------

    def _stack_of(self):
        stack = getattr(self._stack, "open", None)
        if stack is None:
            stack = self._stack.open = []
        return stack

    def span(self, name, **attrs):
        """Open a span nested under the current thread's innermost open
        span; returns its context-manager handle."""
        with self._lock:
            sid = self._next_sid
            self._next_sid += 1
        stack = self._stack_of()
        parent = stack[-1].sid if stack else None
        record = SpanRecord(
            sid=sid,
            parent=parent,
            name=name,
            start_ns=perf_counter_ns(),
            pid=self._pid,
            tid=threading.get_ident(),
            attrs=attrs,
        )
        stack.append(record)
        return _SpanHandle(self, record)

    def _finish(self, record):
        record.end_ns = perf_counter_ns()
        stack = self._stack_of()
        if stack and stack[-1] is record:
            stack.pop()
        else:  # out-of-order exit; drop it without corrupting the stack
            try:
                stack.remove(record)
            except ValueError:
                pass
        with self._lock:
            self._finished.append(record)

    # -- cross-process adoption --------------------------------------------

    def adopt(self, spans, parent_sid=None):
        """Merge worker-recorded spans into this tracer, remapping their
        tracer-local sids into this tracer's id space and re-parenting
        their roots under ``parent_sid`` (the dispatching map-call
        span). Returns the adopted records."""
        spans = list(spans)
        if not spans:
            return []
        with self._lock:
            base = self._next_sid
            self._next_sid += len(spans)
        mapping = {s.sid: base + i for i, s in enumerate(spans)}
        adopted = []
        for span in spans:
            adopted.append(SpanRecord(
                sid=mapping[span.sid],
                parent=(mapping[span.parent]
                        if span.parent in mapping else parent_sid),
                name=span.name,
                start_ns=span.start_ns,
                end_ns=span.end_ns,
                pid=span.pid,
                tid=span.tid,
                attrs=span.attrs,
            ))
        with self._lock:
            self._finished.extend(adopted)
        return adopted

    # -- reading -----------------------------------------------------------

    def spans(self):
        """Snapshot of every finished span, in finish order."""
        with self._lock:
            return list(self._finished)

    def drain(self):
        """Remove and return every finished span (workers ship these
        back to the owner)."""
        with self._lock:
            out = self._finished
            self._finished = []
            return out

    def __len__(self):
        with self._lock:
            return len(self._finished)


# -- the installed tracer -----------------------------------------------------

_TRACER = None


def install(tracer):
    """Make ``tracer`` the process's active tracer. Returns the tracer
    (so ``tracer = install(Tracer())`` reads naturally)."""
    global _TRACER
    _TRACER = tracer
    return tracer


def uninstall():
    """Deactivate tracing; returns the tracer that was active (if any)."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    return tracer


def swap(tracer):
    """Install ``tracer`` (may be None) and return the previous one --
    the save/restore shape worker tasks use."""
    global _TRACER
    previous, _TRACER = _TRACER, tracer
    return previous


def current_tracer():
    """The active tracer, or None."""
    return _TRACER


def enabled():
    """Whether a tracer is installed."""
    return _TRACER is not None


def span(name, **attrs):
    """Open a span on the active tracer -- or return the shared no-op
    handle when tracing is off (the permanently-wired fast path)."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


# -- well-formedness ----------------------------------------------------------


def validate_spans(spans, owner_pid=None):
    """Structural problems in a span list; empty means well-formed.

    Checks: unique sids; every span closed (``end >= start > 0``);
    parents exist; same-process children lie within their parent's
    interval (cross-process children are exempt -- worker clocks are
    unrelated to the owner's). When ``owner_pid`` is given, any
    parentless span recorded by a *different* process is flagged: a
    worker span that was shipped back but never re-parented under its
    dispatching map-call span.
    """
    problems = []
    by_sid = {}
    for span in spans:
        if span.sid in by_sid:
            problems.append(f"duplicate sid {span.sid}")
        by_sid[span.sid] = span
    for span in spans:
        label = f"span {span.sid} ({span.name!r})"
        if not span.closed:
            problems.append(f"{label}: not closed "
                            f"(start={span.start_ns}, end={span.end_ns})")
        if span.parent is not None:
            parent = by_sid.get(span.parent)
            if parent is None:
                problems.append(f"{label}: parent {span.parent} missing")
            elif parent.pid == span.pid and parent.closed and span.closed:
                if span.start_ns < parent.start_ns \
                        or span.end_ns > parent.end_ns:
                    problems.append(
                        f"{label}: not nested within parent "
                        f"{parent.sid} ({parent.name!r})"
                    )
        elif owner_pid is not None and span.pid != owner_pid:
            problems.append(f"{label}: worker span was never re-parented")
    return problems
