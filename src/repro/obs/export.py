"""Trace exporters and loaders.

Two on-disk shapes for one span list:

* **JSONL** (``--trace-format jsonl``, the default): one span per line,
  the exact :meth:`~repro.obs.trace.SpanRecord.as_dict` fields. Grep-,
  ``jq``- and stream-friendly; ``repro obs summary`` consumes it.
* **Chrome trace-event JSON** (``--trace-format chrome``): a
  ``{"traceEvents": [...]}`` object of complete (``"ph": "X"``) events,
  loadable directly in ``chrome://tracing`` / Perfetto. Timestamps are
  microseconds (the trace-event unit); each process's spans keep their
  own ``pid`` lane, so worker clock domains never overlap the owner's.

Writes are atomic (tmp + ``os.replace``) so a crash mid-export never
leaves a half-written trace under the requested name.
"""

from __future__ import annotations

import json
import os

from repro.obs.trace import SpanRecord

FORMAT_JSONL = "jsonl"
FORMAT_CHROME = "chrome"
FORMATS = (FORMAT_JSONL, FORMAT_CHROME)


def chrome_events(spans):
    """The Chrome trace-event list for a span list (complete events,
    microsecond timestamps, attrs in ``args``)."""
    events = []
    for span in spans:
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.start_ns / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "pid": span.pid,
            "tid": span.tid,
            "args": dict(span.attrs, sid=span.sid, parent=span.parent),
        })
    return events


def _atomic_write(path, text):
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def write_trace(spans, path, fmt=FORMAT_JSONL):
    """Write a span list to ``path`` in the given format; returns the
    number of spans written."""
    spans = list(spans)
    if fmt == FORMAT_JSONL:
        lines = [json.dumps(s.as_dict(), sort_keys=True) for s in spans]
        _atomic_write(path, "\n".join(lines) + ("\n" if lines else ""))
    elif fmt == FORMAT_CHROME:
        payload = {"traceEvents": chrome_events(spans),
                   "displayTimeUnit": "ms"}
        _atomic_write(path, json.dumps(payload, sort_keys=True) + "\n")
    else:
        raise ValueError(
            f"unknown trace format {fmt!r}; expected one of {FORMATS}"
        )
    return len(spans)


def load_spans(path):
    """Load a JSONL trace back into :class:`SpanRecord` objects.

    Raises ``ValueError`` with a pointed message when handed a Chrome-
    format trace (that shape is for the browser, not for ``summary``).
    """
    spans = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: bad span record: {exc}"
                ) from exc
            if isinstance(record, dict) and "traceEvents" in record:
                raise ValueError(
                    f"{path} is a Chrome trace-event file; "
                    f"'repro obs summary' reads the jsonl format "
                    f"(--trace-format jsonl)"
                )
            try:
                spans.append(SpanRecord.from_dict(record))
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: bad span record: {exc}"
                ) from exc
    return spans


def load_spans_tolerant(path):
    """Like :func:`load_spans`, but tolerate an unparseable *tail*.

    A trace being appended by an in-flight (or crashed) run legitimately
    ends in a partial line; summarising such a file should skip the
    broken tail and say so, not die. Corruption anywhere *before* the
    tail -- a bad line followed by further good ones -- is still an
    error, with the same pointed messages as :func:`load_spans` (and a
    Chrome-format trace is rejected outright: that shape is for the
    browser).

    Returns ``(spans, skipped_tail)`` where ``skipped_tail`` counts the
    contiguous bad lines dropped at end-of-file.
    """
    parsed = []  # (lineno, SpanRecord | None, error | None)
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                parsed.append((lineno, None,
                               f"{path}:{lineno}: bad span record: {exc}"))
                continue
            if isinstance(record, dict) and "traceEvents" in record:
                raise ValueError(
                    f"{path} is a Chrome trace-event file; "
                    f"'repro obs summary' reads the jsonl format "
                    f"(--trace-format jsonl)"
                )
            try:
                parsed.append((lineno, SpanRecord.from_dict(record),
                               None))
            except (KeyError, TypeError, ValueError) as exc:
                parsed.append((lineno, None,
                               f"{path}:{lineno}: bad span record: {exc}"))
    skipped_tail = 0
    while parsed and parsed[-1][1] is None:
        parsed.pop()
        skipped_tail += 1
    for _, _, error in parsed:
        if error is not None:
            raise ValueError(error)
    return [span for _, span, _ in parsed], skipped_tail
