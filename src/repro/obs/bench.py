"""Tracing-overhead benchmark for the observability layer.

The span tracer is wired permanently into the scoring hot paths, so it
carries two cost contracts (DESIGN.md section 10), both guarded by the
committed ``BENCH_obs.json`` baseline:

* **traced**: a full score pass with a tracer installed finishes within
  ``max_overhead_pct`` (5%) of the same pass untraced;
* **no-op**: with no tracer installed, the residual cost of every
  ``span()`` call site hit during a pass (one module-global read and a
  shared-handle context manager each) stays under ``max_noop_pct`` (1%)
  of the untraced wall time.

The two legs run interleaved, best-of-``repeats`` each, with the kernel
cache off so every pass performs the full kernel work (a warm pass
would be almost pure cache lookups and the ratio would be noise). The
traced pass is also diffed bit-for-bit against the untraced one -- the
observe-never-perturb contract, enforced here as well as in ``repro
qa``.

::

    python -m repro.obs.bench            # run and print
    python -m repro.obs.bench --write    # also refresh BENCH_obs.json
    python -m repro.obs.bench --check    # exit 1 if over the baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.perspector import PerspectorConfig
from repro.engine.bench import build_subject
from repro.engine.engine import Engine
from repro.obs import trace as obs_trace

#: Smaller than the engine bench's SPEC'17 subject: one pass must stay
#: around a second so best-of-3 x 2 legs completes quickly, while still
#: dwarfing per-span cost by orders of magnitude.
SUBJECT = {"n_workloads": 24, "n_events": 4, "length": 48}
MAX_OVERHEAD_PCT = 5.0
MAX_NOOP_PCT = 1.0
DEFAULT_BASELINE = "BENCH_obs.json"
NOOP_CALLS = 200_000


def _score_pass(traced, seed=0, subject=None):
    """One cache-off score pass; returns (seconds, scorecard, spans)."""
    matrix = build_subject(seed=seed, **dict(SUBJECT if subject is None
                                             else subject))
    engine = Engine(cache=False)
    tracer = obs_trace.install(obs_trace.Tracer()) if traced else None
    try:
        start = time.perf_counter()
        card = engine.score_matrix(matrix, PerspectorConfig(), "all")
        elapsed = time.perf_counter() - start
    finally:
        if traced:
            obs_trace.uninstall()
        engine.close()
    return elapsed, card, (tracer.spans() if traced else [])


def measure_noop(calls=NOOP_CALLS):
    """Per-call cost (ns) of ``span()`` with no tracer installed."""
    assert not obs_trace.enabled()
    span = obs_trace.span
    start = time.perf_counter_ns()
    for _ in range(calls):
        with span("noop.probe"):
            pass
    return (time.perf_counter_ns() - start) / calls


def run_bench(seed=0, repeats=5, subject=None):
    """Run both legs interleaved; return the result record.

    One untimed warmup pass settles numpy/BLAS state first; each leg
    then keeps its best of ``repeats`` interleaved runs, so a noise
    spike hitting one leg cannot fake (or mask) overhead.
    """
    from repro.qa.determinism import diff_scorecards

    subject = dict(SUBJECT if subject is None else subject)
    _score_pass(False, seed=seed, subject=subject)  # warmup, untimed
    untraced_s = traced_s = float("inf")
    untraced_card = traced_card = None
    span_count = 0
    for _ in range(repeats):
        elapsed, untraced_card, _spans = _score_pass(False, seed=seed,
                                                     subject=subject)
        untraced_s = min(untraced_s, elapsed)
        elapsed, traced_card, spans = _score_pass(True, seed=seed,
                                                  subject=subject)
        traced_s = min(traced_s, elapsed)
        span_count = len(spans)

    overhead_pct = 100.0 * (traced_s - untraced_s) / untraced_s
    noop_per_call_ns = measure_noop()
    noop_total_pct = 100.0 * (noop_per_call_ns * span_count) \
        / (untraced_s * 1e9)
    return {
        "subject": subject,
        "repeats": repeats,
        "untraced_s": round(untraced_s, 4),
        "traced_s": round(traced_s, 4),
        "overhead_pct": round(overhead_pct, 2),
        "span_count": span_count,
        "noop_per_call_ns": round(noop_per_call_ns, 1),
        "noop_total_pct": round(noop_total_pct, 4),
        "identical": diff_scorecards(untraced_card, traced_card) == [],
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "max_noop_pct": MAX_NOOP_PCT,
    }


def render(result):
    subject = result["subject"]
    lines = [
        "tracing-overhead bench "
        f"({subject['n_workloads']} workloads x {subject['n_events']} "
        f"events, cache off, best of {result['repeats']}):",
        f"  untraced: {result['untraced_s']:.3f} s",
        f"  traced:   {result['traced_s']:.3f} s "
        f"({result['span_count']} spans)",
        f"  overhead: {result['overhead_pct']:+.1f}% "
        f"(baseline allows <= {result['max_overhead_pct']:.0f}%)",
        f"  no-op:    {result['noop_per_call_ns']:.0f} ns/call -> "
        f"{result['noop_total_pct']:.3f}% of the untraced pass "
        f"(allows <= {result['max_noop_pct']:.0f}%)",
        f"  traced scorecard bit-identical to untraced: "
        f"{result['identical']}",
    ]
    return "\n".join(lines)


def check(result, baseline):
    """Gate failures of ``result`` against a baseline record."""
    max_overhead = float(baseline.get("max_overhead_pct",
                                      MAX_OVERHEAD_PCT))
    max_noop = float(baseline.get("max_noop_pct", MAX_NOOP_PCT))
    failures = []
    if not result["identical"]:
        failures.append("traced scorecard is not bit-identical to "
                        "untraced")
    if result["overhead_pct"] > max_overhead:
        failures.append(
            f"tracing overhead {result['overhead_pct']:+.1f}% exceeds "
            f"the {max_overhead:.0f}% baseline"
        )
    if result["noop_total_pct"] > max_noop:
        failures.append(
            f"no-op span cost {result['noop_total_pct']:.3f}% exceeds "
            f"the {max_noop:.0f}% baseline"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="Time a traced score pass against an untraced one.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--json", metavar="PATH", default=DEFAULT_BASELINE,
                        help="baseline file for --write/--check")
    parser.add_argument("--write", action="store_true",
                        help="write the result as the new baseline")
    parser.add_argument("--check", action="store_true",
                        help="fail unless overhead is within the "
                             "baseline bounds and outputs bit-identical")
    args = parser.parse_args(argv)

    result = run_bench(seed=args.seed, repeats=args.repeats)
    print(render(result))

    if args.write:
        with open(args.json, "w") as f:
            json.dump(result, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.json}")
    if args.check:
        try:
            with open(args.json) as f:
                baseline = json.load(f)
        except FileNotFoundError:
            baseline = {}
        failures = check(result, baseline)
        if failures:
            for failure in failures:
                print(f"CHECK FAIL: {failure}")
            return 1
        print("check passed: tracing within "
              f"{baseline.get('max_overhead_pct', MAX_OVERHEAD_PCT):.0f}"
              "% traced / "
              f"{baseline.get('max_noop_pct', MAX_NOOP_PCT):.0f}% no-op "
              "and bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
