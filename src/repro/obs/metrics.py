"""Unified metrics registry for the engine's performance layers.

Before this module, every engine layer grew its own counters --
:class:`~repro.engine.cache.CacheStats` hits/misses, the disk tier's
``snapshot()`` dict, ``ShmStore.published``/``published_bytes`` plain
ints -- and ``Engine._engine_details`` recomputed per-pass deltas by
hand across all of them. Counters kept in three shapes drift in three
ways. :class:`MetricsRegistry` is the single store: each layer declares
its instruments once (counters, gauges, histograms) against the
registry its owning :class:`~repro.engine.Engine` carries, legacy
accessors (``KernelCache.stats()``, ``DiskCache.hits``, ...) become
views over the same integers, and a per-pass delta is one
``registry.snapshot()`` before and one ``.delta()`` after.

Instrument kinds:

* **Counter** -- monotonically increasing int (`inc`); deltas subtract.
* **Gauge** -- point-in-time value (`set`); deltas report the current
  value (a gauge has no meaningful movement arithmetic).
* **Histogram** -- running count/sum/min/max over observed values
  (`observe`); snapshots expand to ``<name>_count``/``<name>_sum``
  (counter-like, so deltas subtract) and the delta carries the current
  ``<name>_min``/``<name>_max``.

Increments are plain int attribute updates under the CPython GIL --
the engine's layers mutate them from one thread per process, and the
registry lock only guards instrument creation and snapshots.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n

    def reset(self):
        """Zero the counter (legacy ``reset_counters`` support)."""
        self.value = 0


class Gauge:
    """Point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value


class Histogram:
    """Running count/sum/min/max over observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable flat view of a registry at one instant.

    ``values`` maps expanded metric names to numbers; ``kinds`` maps
    each name to ``"counter"`` or ``"gauge"`` (histogram fields arrive
    pre-expanded as counter-like ``_count``/``_sum`` plus gauge-like
    ``_min``/``_max``).
    """

    values: dict
    kinds: dict

    def __getitem__(self, name):
        return self.values[name]

    def get(self, name, default=0):
        return self.values.get(name, default)

    def delta(self, earlier):
        """Metric movement since ``earlier``, as a plain dict: counters
        subtract (names missing earlier count from zero), gauges carry
        their current value."""
        out = {}
        for name, value in self.values.items():
            if self.kinds.get(name) == "counter":
                out[name] = value - earlier.values.get(name, 0)
            else:
                out[name] = value
        return out

    def as_dict(self):
        return dict(self.values)


#: Snapshot name suffixes a histogram ``h`` expands into. A non-histogram
#: instrument whose name collides with one of these expansions would
#: silently share (or shadow) the expanded entry in :meth:`snapshot`,
#: with the surviving value decided by dict insertion order -- so the
#: collision is rejected at registration time instead.
RESERVED_SUFFIXES = ("_count", "_sum", "_min", "_max")


class MetricsRegistry:
    """Named instruments, created on first use, snapshottable."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics = {}

    def _check_expansion_collision(self, name, cls):
        """Reject names whose :meth:`snapshot` expansions would collide.

        Two directions, both fatal: registering histogram ``lat`` while
        an instrument ``lat_count`` (or ``lat_sum``/``lat_min``/
        ``lat_max``) exists, and registering an instrument ``lat_count``
        while histogram ``lat`` exists. Called under ``self._lock``.
        """
        if cls is Histogram:
            for suffix in RESERVED_SUFFIXES:
                other = self._metrics.get(name + suffix)
                if other is not None and not isinstance(other, Histogram):
                    raise ValueError(
                        f"histogram {name!r} would expand to "
                        f"{name + suffix!r} in snapshots, which is "
                        f"already registered as a "
                        f"{type(other).__name__.lower()}; rename one of "
                        f"them"
                    )
        for suffix in RESERVED_SUFFIXES:
            if not name.endswith(suffix):
                continue
            base = name[:-len(suffix)]
            other = self._metrics.get(base)
            if isinstance(other, Histogram) and cls is not Histogram:
                raise ValueError(
                    f"{cls.__name__.lower()} {name!r} collides with the "
                    f"snapshot expansion of histogram {base!r}; rename "
                    f"one of them"
                )

    def _get_or_create(self, name, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                self._check_expansion_collision(name, cls)
                metric = self._metrics[name] = cls(name)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name):
        return self._get_or_create(name, Counter)

    def gauge(self, name):
        return self._get_or_create(name, Gauge)

    def histogram(self, name):
        return self._get_or_create(name, Histogram)

    def __contains__(self, name):
        with self._lock:
            return name in self._metrics

    def __len__(self):
        with self._lock:
            return len(self._metrics)

    def snapshot(self):
        """One flat, immutable view of every instrument right now."""
        values = {}
        kinds = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if isinstance(metric, Counter):
                values[metric.name] = metric.value
                kinds[metric.name] = "counter"
            elif isinstance(metric, Gauge):
                values[metric.name] = metric.value
                kinds[metric.name] = "gauge"
            else:
                values[f"{metric.name}_count"] = metric.count
                kinds[f"{metric.name}_count"] = "counter"
                values[f"{metric.name}_sum"] = metric.total
                kinds[f"{metric.name}_sum"] = "counter"
                if metric.count:
                    values[f"{metric.name}_min"] = metric.min
                    kinds[f"{metric.name}_min"] = "gauge"
                    values[f"{metric.name}_max"] = metric.max
                    kinds[f"{metric.name}_max"] = "gauge"
        return MetricsSnapshot(values=values, kinds=kinds)
