"""repro -- a full reproduction of *Perspector: Benchmarking Benchmark
Suites* (Kumar, Panda, Sarangi; DATE 2023).

Perspector assigns four quantitative quality scores to a benchmark suite
from the hardware-performance-counter data its workloads produce:

* **ClusterScore** (diversity, lower is better),
* **TrendScore** (phase behaviour, higher is better),
* **CoverageScore** (parameter-space coverage, higher is better),
* **SpreadScore** (uniformity of coverage, lower is better).

Because this reproduction has no hardware PMU access, the measurement stack
is simulated end-to-end: synthetic phase-structured workload models
(:mod:`repro.workloads`) drive a trace-based microarchitecture simulator
(:mod:`repro.uarch`) observed through a PMU model (:mod:`repro.perf`); the
Perspector metrics proper live in :mod:`repro.core` on top of from-scratch
statistical kernels (:mod:`repro.stats`).

Quickstart::

    from repro import Perspector, load_suite

    suite = load_suite("nbench")
    scores = Perspector(seed=7).score(suite)
    print(scores)

The public API below is re-exported lazily (PEP 562) so that importing a
single substrate (e.g. ``repro.stats``) does not pull in the whole stack.
"""

__version__ = "1.0.0"

_CORE_EXPORTS = {
    "Perspector": "repro.core",
    "PerspectorConfig": "repro.core",
    "SuiteScorecard": "repro.core",
    "CounterMatrix": "repro.core",
    "cluster_score": "repro.core",
    "trend_score": "repro.core",
    "coverage_score": "repro.core",
    "spread_score": "repro.core",
    "Engine": "repro.engine",
    "EventFocus": "repro.core.focus",
    "LHSSubsetGenerator": "repro.core.subset",
    "SubsetReport": "repro.core.subset",
    "SubsetEvaluator": "repro.engine.subset_eval",
    "SubsetSearch": "repro.engine.subset_eval",
    "SubsetSearchResult": "repro.engine.subset_eval",
    "load_suite": "repro.workloads",
    "load_all_suites": "repro.workloads",
    "available_suites": "repro.workloads",
}

__all__ = sorted(_CORE_EXPORTS) + ["__version__"]


def __getattr__(name):
    """Lazily resolve the public API (PEP 562)."""
    if name in _CORE_EXPORTS:
        import importlib

        module = importlib.import_module(_CORE_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value  # cache for subsequent lookups
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return __all__
