"""Command-line interface.

::

    perspector score <suite> [--focus all|llc|tlb] ...
    perspector compare <suite> <suite> ... [--focus ...]
    perspector subset <suite> --size 8
    perspector suites
    perspector experiment fig1|fig2|fig3|fig4|fig5|fig6|subset|mux|ablations
    perspector lint [paths ...]
    perspector qa [--seed N]

Scoring commands run the simulation stack end-to-end; ``--quick``
switches to the short-trace preset. ``lint`` runs the project's
static-analysis pass (:mod:`repro.qa.lint`) and ``qa`` the bit-for-bit
determinism checker (:mod:`repro.qa.determinism`). The ``repro``
console script is an alias of this one, so ``repro lint src/repro``
works as documented.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.perspector import Perspector
from repro.core.subset import LHSSubsetGenerator
from repro.experiments.runner import ExperimentConfig, measure_suites
from repro.workloads import available_suites

_EXPERIMENTS = {
    "fig1": "repro.experiments.fig1_normalization",
    "fig2": "repro.experiments.fig2_coverage_vs_spread",
    "fig3": "repro.experiments.fig3_suite_scores",
    "fig4": "repro.experiments.fig4_clustering",
    "fig5": "repro.experiments.fig5_trend",
    "fig6": "repro.experiments.fig6_pca_coverage",
    "subset": "repro.experiments.subset_generation",
    "mux": "repro.experiments.multiplexing",
    "ablations": "repro.experiments.ablations",
    "machine": "repro.experiments.machine_ablations",
    "stability": "repro.experiments.stability",
}


def _config(args):
    return (ExperimentConfig.quick() if args.quick
            else ExperimentConfig.full())


def _cmd_suites(args):
    for name in available_suites():
        print(name)
    return 0


def _cmd_score(args):
    config = _config(args)
    matrix = measure_suites([args.suite], config)[args.suite]
    card = Perspector(seed=config.metric_seed).score(matrix,
                                                     focus=args.focus)
    print(card)
    return 0


def _cmd_compare(args):
    config = _config(args)
    matrices = measure_suites(args.suites, config)
    perspector = Perspector(seed=config.metric_seed)
    comparison = perspector.compare(
        *[matrices[s] for s in args.suites], focus=args.focus
    )
    print(comparison.table())
    if args.bars:
        for score in ("cluster", "trend", "coverage", "spread"):
            print()
            print(comparison.bars(score))
    if args.csv:
        with open(args.csv, "w") as f:
            f.write(comparison.to_csv())
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_subset(args):
    config = _config(args)
    matrix = measure_suites([args.suite], config)[args.suite]
    report = LHSSubsetGenerator(
        subset_size=args.size, seed=config.metric_seed
    ).report(matrix, seed=config.metric_seed)
    print(report)
    return 0


def _cmd_lint(args):
    from repro.qa.lint import main as lint_main

    argv = list(args.paths) or ["src/repro"]
    if args.list_rules:
        argv = ["--list-rules"]
    return lint_main(argv)


def _cmd_qa(args):
    from repro.qa.determinism import main as determinism_main

    argv = ["--seed", str(args.seed), "--focus", args.focus]
    if args.full:
        argv.append("--full")
    return determinism_main(argv)


def _cmd_experiment(args):
    import importlib

    module = importlib.import_module(_EXPERIMENTS[args.name])
    kwargs = {}
    if args.quick:
        kwargs["config"] = ExperimentConfig.quick()
    if args.name in ("fig2", "mux", "machine"):
        kwargs = {}  # these drivers take no config
    print(module.render(module.run(**kwargs)))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="perspector",
        description="Benchmark benchmark suites (DATE 2023 reproduction).",
    )
    parser.add_argument("--quick", action="store_true",
                        help="short-trace preset (fast, noisier)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("suites", help="list modelled suites")

    p_score = sub.add_parser("score", help="score one suite")
    p_score.add_argument("suite", choices=available_suites())
    p_score.add_argument("--focus", default="all",
                         choices=["all", "llc", "tlb", "branch", "core"])

    p_cmp = sub.add_parser("compare", help="compare suites jointly")
    p_cmp.add_argument("suites", nargs="+", choices=available_suites())
    p_cmp.add_argument("--focus", default="all",
                       choices=["all", "llc", "tlb", "branch", "core"])
    p_cmp.add_argument("--csv", metavar="PATH",
                       help="also write the comparison as CSV")
    p_cmp.add_argument("--bars", action="store_true",
                       help="print bar panels per score")

    p_sub = sub.add_parser("subset", help="LHS subset generation")
    p_sub.add_argument("suite", choices=available_suites())
    p_sub.add_argument("--size", type=int, default=8)

    p_exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))

    p_lint = sub.add_parser(
        "lint", help="run the QA static-analysis pass over the tree"
    )
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories (default: src/repro)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")

    p_qa = sub.add_parser(
        "qa", help="bit-for-bit determinism check of the scoring pipeline"
    )
    p_qa.add_argument("--seed", type=int, default=0)
    p_qa.add_argument("--focus", default="all",
                      choices=["all", "llc", "tlb", "branch", "core"])
    p_qa.add_argument("--full", action="store_true",
                      help="full-length traces (slower)")

    p_rep = sub.add_parser(
        "report", help="full suite report (scores + characterization)"
    )
    p_rep.add_argument("suite", help="suite name or path to a JSON spec")
    return parser


def _cmd_report(args):
    from repro.perf.report import build_report, render_report
    from repro.workloads import load_suite as load_builtin

    config = _config(args)
    if args.suite in available_suites():
        suite = load_builtin(args.suite)
    else:
        from repro.workloads.custom import suite_from_json

        suite = suite_from_json(args.suite)
    report = build_report(suite, config.session(),
                          metric_seed=config.metric_seed)
    print(render_report(report))
    return 0


def main(argv=None):
    args = build_parser().parse_args(argv)
    handlers = {
        "suites": _cmd_suites,
        "score": _cmd_score,
        "compare": _cmd_compare,
        "subset": _cmd_subset,
        "experiment": _cmd_experiment,
        "report": _cmd_report,
        "lint": _cmd_lint,
        "qa": _cmd_qa,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
