"""Command-line interface.

::

    perspector score <suite> [--focus all|llc|tlb] ...
    perspector compare <suite> <suite> ... [--focus ...]
    perspector subset <suite> --size 8 [--search N --method lhs|random|swap]
    perspector suites
    perspector experiment fig1|fig2|fig3|fig4|fig5|fig6|subset|mux|ablations
    perspector lint [--deep] [--format text|json] [paths ...]
    perspector analyze effects <symbol> [--root DIR]
    perspector qa [--seed N] [--backend NAME] [--serve] [--history]
    perspector obs summary TRACE [--top N]
    perspector obs history [--history-dir DIR] [--digest PREFIX]
    perspector obs diff [RUN-A RUN-B] [--history-dir DIR]
    perspector obs check [--history-dir DIR] [--max-wall-pct PCT]
    perspector serve [--host H] [--port P] [--workers N ...]
    perspector client score <suite> [--host H] [--port P]

Scoring commands run the simulation stack end-to-end; ``--quick``
switches to the short-trace preset. ``score``, ``compare``, ``subset``
and ``experiment`` accept ``--workers N`` (fan scoring across a
persistent spawn worker pool), ``--no-cache`` (disable the engine's
kernel cache), ``--cache-dir DIR`` / ``$REPRO_CACHE_DIR`` (persist
measured suites and kernel results on disk, so repeat invocations
start warm) and ``--backend NAME`` / ``$REPRO_BACKEND`` (the compute
backend for the DTW / KS hot paths: ``reference`` or ``vectorized``);
none of the four changes any output bit. ``lint`` runs
the project's static-analysis pass (:mod:`repro.qa.lint`); with
``--deep`` it adds the whole-program contract rules (cache-purity,
pool-safety, shm-readonly -- :mod:`repro.qa.flow`) and ``--format
json`` emits findings machine-readably for CI. ``analyze effects``
prints a function's inferred effect set with the justifying call
chains. ``qa`` runs the bit-for-bit determinism checker
(:mod:`repro.qa.determinism`). The ``repro`` console script is an
alias of this one, so ``repro lint src/repro`` works as documented.

Every subcommand also accepts ``--trace FILE`` / ``--trace-format
{jsonl,chrome}`` (default: ``$REPRO_TRACE`` if set): the run executes
under a span tracer (:mod:`repro.obs`) and writes the span log plus a
run manifest (``FILE.manifest.json``) on exit. Tracing never changes
an output bit -- ``repro qa`` checks that. ``repro obs summary FILE``
renders a JSONL trace as a human report (top spans by self time,
cache-tier hit rates, pool utilization).

Scoring subcommands also accept ``--history-dir DIR`` /
``$REPRO_HISTORY``: each run appends a record -- the full scorecard in
the bit-exact wire encoding, the metrics snapshot, per-span self-time
totals and the run manifest, keyed by config digest -- to the
longitudinal history store (:mod:`repro.obs.history`). ``repro obs
history`` lists the stored trajectories, ``repro obs diff`` diffs two
runs at the IEEE-754 bit level (drift under an equal digest is a
determinism regression), and ``repro obs check`` gates a trajectory on
score drift and perf regressions. Recording never changes an output
bit either -- ``repro qa --history`` checks that.

``serve`` runs the scoring daemon (:mod:`repro.service`): one shared
engine -- persistent pool, kernel cache, disk tier -- kept hot across
HTTP requests, with ``score``/``compare``/``subset`` as endpoints and
a live metrics snapshot at ``GET /v1/metrics``. ``client`` is the
matching blocking client; ``repro client score <suite>`` prints
byte-for-byte what ``repro score <suite>`` prints (the service qa
variant, ``repro qa --serve`` / ``make serve-smoke``, enforces that at
the IEEE-754 bit level).

Report tables go to stdout; status lines (``wrote ...``) go to stderr,
so piping a report into a file never interleaves progress chatter.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace

from repro.core.subset import LHSSubsetGenerator
from repro.experiments.runner import (
    ExperimentConfig,
    measure_suites,
    perspector_for,
)
from repro.workloads import available_suites

_EXPERIMENTS = {
    "fig1": "repro.experiments.fig1_normalization",
    "fig2": "repro.experiments.fig2_coverage_vs_spread",
    "fig3": "repro.experiments.fig3_suite_scores",
    "fig4": "repro.experiments.fig4_clustering",
    "fig5": "repro.experiments.fig5_trend",
    "fig6": "repro.experiments.fig6_pca_coverage",
    "subset": "repro.experiments.subset_generation",
    "mux": "repro.experiments.multiplexing",
    "ablations": "repro.experiments.ablations",
    "machine": "repro.experiments.machine_ablations",
    "stability": "repro.experiments.stability",
}


def _config(args, default_preset=ExperimentConfig.full):
    config = (ExperimentConfig.quick() if args.quick
              else default_preset())
    return replace(
        config,
        workers=getattr(args, "workers", 1),
        cache=not getattr(args, "no_cache", False),
        cache_dir=getattr(args, "cache_dir", None),
        backend=getattr(args, "backend", None),
        shards=getattr(args, "shard_hosts", None),
        history_dir=getattr(args, "history_dir", None),
    )


def _cmd_suites(args):
    for name in available_suites():
        print(name)
    return 0


def _cmd_score(args):
    from repro.engine import Engine
    from repro.obs import publish

    config = _config(args)
    matrix = measure_suites([args.suite], config)[args.suite]
    # The engine is built explicitly (instead of letting the Perspector
    # facade build a private one) so the run's MetricsRegistry snapshot
    # is available to the history recorder; the engine is a pure
    # accelerator, so the scorecard bits are identical either way.
    with Engine.from_config(config) as engine:
        card = perspector_for(config, engine=engine).score(
            matrix, focus=args.focus
        )
        publish("scorecard", card)
        if getattr(args, "history_windows", None):
            from repro.obs import window_trajectory

            publish("windows", window_trajectory(
                matrix, seed=config.metric_seed,
                n_windows=args.history_windows, engine=engine,
            ))
        publish("metrics", engine.metrics.snapshot())
    print(card)
    return 0


def _cmd_compare(args):
    from repro.engine import Engine
    from repro.obs import publish

    config = _config(args)
    matrices = measure_suites(args.suites, config)
    with Engine.from_config(config) as engine:
        perspector = perspector_for(config, engine=engine)
        comparison = perspector.compare(
            *[matrices[s] for s in args.suites], focus=args.focus
        )
        for card in comparison.scorecards:
            publish("scorecard", card)
        publish("metrics", engine.metrics.snapshot())
    print(comparison.table())
    if args.bars:
        for score in ("cluster", "trend", "coverage", "spread"):
            print()
            print(comparison.bars(score))
    if args.csv:
        with open(args.csv, "w") as f:
            f.write(comparison.to_csv())
        # Status goes to stderr: stdout carries only the report tables,
        # so redirecting them to a file stays clean.
        print(f"wrote {args.csv}", file=sys.stderr)
    return 0


def _cmd_subset(args):
    from repro.engine import Engine, SubsetEvaluator, SubsetSearch
    from repro.obs import publish

    config = _config(args)
    matrix = measure_suites([args.suite], config)[args.suite]
    engine = Engine.from_config(config)
    if args.search:
        evaluator = SubsetEvaluator(matrix, seed=config.metric_seed,
                                    engine=engine)
        result = SubsetSearch(
            matrix, args.size, seed=config.metric_seed,
            evaluator=evaluator,
        ).search(args.search, method=args.method)
        publish("search_result", result)
        publish("metrics", engine.metrics.snapshot())
        print(result)
        return 0
    report = LHSSubsetGenerator(
        subset_size=args.size, seed=config.metric_seed
    ).report(matrix, seed=config.metric_seed, engine=engine)
    publish("subset_report", report)
    publish("metrics", engine.metrics.snapshot())
    print(report)
    return 0


def _cmd_lint(args):
    from repro.qa.lint import main as lint_main

    argv = list(args.paths) or ["src/repro"]
    if args.deep:
        argv.append("--deep")
    if args.output_format != "text":
        argv.extend(["--format", args.output_format])
    if args.list_rules:
        argv = ["--list-rules"]
    return lint_main(argv)


def _cmd_analyze(args):
    from repro.qa.flow.analyze import effects_report
    from repro.qa.flow.indexer import default_cache_dir

    try:
        report = effects_report(args.symbol, root=args.root,
                                cache_dir=default_cache_dir())
    except LookupError as exc:
        print(f"repro analyze: {exc}", file=sys.stderr)
        return 2
    print(report)
    return 0


def _cmd_qa(args):
    from repro.qa.determinism import main as determinism_main

    argv = ["--seed", str(args.seed), "--focus", args.focus,
            "--workers", str(args.workers)]
    if args.full:
        argv.append("--full")
    if args.backend:
        argv.extend(["--backend", args.backend])
    status = determinism_main(argv)
    if args.serve:
        # The service determinism variant: a daemon-served scorecard
        # must be bit-identical to the one-shot CLI, warm requests must
        # hit the shared caches, shutdown must leak nothing.
        from repro.qa.service_check import main as service_main

        serve_argv = []
        if args.backend:
            serve_argv = ["--backend", args.backend]
        status = max(status, service_main(serve_argv))
    if args.shards:
        # The shard determinism variant: N local daemons as shard
        # workers; sharded scorecards (cold, disk-warm, vectorized
        # daemons, kill-one-shard) and a sharded subset search must be
        # bit-identical to the serial oracle.
        from repro.qa.shard_check import main as shard_main

        shard_argv = ["--shards", str(args.shards)]
        if args.backend:
            shard_argv.extend(["--backend", args.backend])
        status = max(status, shard_main(shard_argv))
    if args.history:
        # The history determinism variant: recording on vs off must be
        # bit-identical, an equal-digest re-run must diff to zero, and
        # a perturbed record / inflated wall time / degraded hit rate
        # must each be flagged.
        from repro.qa.history_check import main as history_main

        history_argv = []
        if args.backend:
            history_argv = ["--backend", args.backend]
        status = max(status, history_main(history_argv))
    return status


def _cmd_serve(args):
    from repro.service import ScoringService

    # A daemon is a shard *worker*, never a shard coordinator: a worker
    # that re-sharded its blocks to a host list including itself would
    # recurse into its own scoring funnel and deadlock. Any inherited
    # --shard-hosts / $REPRO_SHARDS is stripped here.
    config = replace(_config(args), shards=None)
    service = ScoringService(config, host=args.host, port=args.port)
    return service.run()


def _cmd_client(args):
    import json

    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(host=args.host, port=args.port,
                           timeout=args.timeout,
                           connect_timeout=args.connect_timeout,
                           retries=args.retries)
    try:
        if args.client_command == "score":
            print(client.score(args.suite, focus=args.focus)["rendered"])
        elif args.client_command == "compare":
            print(client.compare(args.suites,
                                 focus=args.focus)["rendered"])
        elif args.client_command == "subset":
            print(client.subset(args.suite, size=args.size,
                                search=args.search,
                                method=args.method)["rendered"])
        elif args.client_command == "metrics":
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
        elif args.client_command == "health":
            print(json.dumps(client.health(), indent=2, sort_keys=True))
        elif args.client_command == "history":
            print(json.dumps(client.history(), indent=2,
                             sort_keys=True))
        else:  # shutdown
            client.shutdown()
            print(f"asked {args.host}:{args.port} to shut down",
                  file=sys.stderr)
    except ServiceError as exc:
        print(f"repro client: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro client: cannot reach {args.host}:{args.port} "
              f"({exc})", file=sys.stderr)
        return 2
    return 0


def _cmd_shard(args):
    from repro.engine.shard import parse_shard_hosts
    from repro.service import ServiceClient, ServiceError

    if not args.shard_hosts:
        print("repro shard: no shard hosts (pass --shard-hosts or set "
              "$REPRO_SHARDS)", file=sys.stderr)
        return 2
    try:
        hosts = parse_shard_hosts(args.shard_hosts)
    except ValueError as exc:
        print(f"repro shard: {exc}", file=sys.stderr)
        return 2
    status = 0
    for host in hosts:
        client = ServiceClient(host=host.host, port=host.port,
                               timeout=args.timeout,
                               connect_timeout=args.timeout, retries=0)
        try:
            health = client.health()
        except ServiceError as exc:
            print(f"{host.address:24s}  DOWN  {exc}")
            status = 1
        else:
            print(f"{host.address:24s}  OK    "
                  f"backend={health.get('backend')} "
                  f"workers={health.get('workers')} "
                  f"cache_dir={health.get('cache_dir')} "
                  f"requests={health.get('requests')} "
                  f"inflight={health.get('inflight')}")
    return status


#: Drivers that default to the quick preset when run without --quick
#: (their full-preset runtime is prohibitive for an interactive CLI).
_QUICK_BY_DEFAULT = {"stability"}

#: Drivers whose run() takes no ExperimentConfig at all.
_NO_CONFIG = {"fig2", "mux", "machine"}


def _cmd_experiment(args):
    import importlib

    module = importlib.import_module(_EXPERIMENTS[args.name])
    if args.name in _NO_CONFIG:
        kwargs = {}
    else:
        preset = (ExperimentConfig.quick
                  if args.name in _QUICK_BY_DEFAULT
                  else ExperimentConfig.full)
        kwargs = {"config": _config(args, default_preset=preset)}
    from repro.obs import publish

    rendered = module.render(module.run(**kwargs))
    # Experiment drivers return rendered artifacts, not scorecard
    # objects; the history record keys on the rendered text's digest.
    publish("rendered", rendered)
    print(rendered)
    return 0


def _cmd_obs(args):
    if args.obs_command == "summary":
        return _cmd_obs_summary(args)
    if args.obs_command == "history":
        return _cmd_obs_history(args)
    if args.obs_command == "diff":
        return _cmd_obs_diff(args)
    return _cmd_obs_check(args)


def _cmd_obs_summary(args):
    from repro.obs import summarize_file

    try:
        report = summarize_file(args.trace_path, top=args.top)
    except (OSError, ValueError) as exc:
        # One pointed line and exit code 2, never a traceback: corrupt
        # or truncated traces are an expected operational condition.
        print(f"repro obs summary: {exc}", file=sys.stderr)
        return 2
    print(report)
    return 0


def _require_history_dir(args):
    if not args.history_dir:
        print("repro obs: no history directory (pass --history-dir or "
              "set $REPRO_HISTORY)", file=sys.stderr)
        return None
    from repro.obs import HistoryStore

    return HistoryStore(args.history_dir)


def _cmd_obs_history(args):
    from repro.obs import render_history

    store = _require_history_dir(args)
    if store is None:
        return 2
    print(render_history(store, digest=args.digest))
    return 0


def _cmd_obs_diff(args):
    from repro.obs import diff_records, render_diff

    store = _require_history_dir(args)
    if store is None:
        return 2
    if len(args.runs) not in (0, 2):
        print("repro obs diff: pass exactly two run ids, or none to "
              "diff the two most recent runs", file=sys.stderr)
        return 2
    try:
        if args.runs:
            record_a = store.load(args.runs[0])
            record_b = store.load(args.runs[1])
        else:
            run_ids = store.run_ids()
            if len(run_ids) < 2:
                print(f"repro obs diff: need at least 2 recorded runs "
                      f"in {store.root}, found {len(run_ids)}",
                      file=sys.stderr)
                return 2
            record_a = store.load(run_ids[-2])
            record_b = store.load(run_ids[-1])
    except (KeyError, OSError, ValueError) as exc:
        print(f"repro obs diff: {exc}", file=sys.stderr)
        return 2
    diff = diff_records(record_a, record_b)
    print(render_diff(diff))
    # Drift under an equal config digest is a determinism regression
    # and fails the command; across different digests it is expected.
    return 1 if (diff.same_digest and not diff.clean) else 0


def _cmd_obs_check(args):
    from repro.obs import check_store

    store = _require_history_dir(args)
    if store is None:
        return 2
    findings = check_store(
        store, digest=args.digest,
        max_wall_pct=(None if args.max_wall_pct < 0
                      else args.max_wall_pct),
        max_hit_drop=(None if args.max_hit_drop < 0
                      else args.max_hit_drop),
    )
    trajectories = store.trajectories()
    if findings:
        for finding in findings:
            print(finding)
        print(f"history check: FAIL ({len(findings)} finding(s) across "
              f"{len(trajectories)} trajectory(ies))", file=sys.stderr)
        return 1
    print(f"history check: ok ({len(store)} run(s), "
          f"{len(trajectories)} trajectory(ies), no score drift, no "
          f"perf regressions)")
    return 0


def _add_trace_flags(p):
    """Span-tracing knobs, shared by every subcommand. Tracing never
    changes any output bit (``repro qa`` enforces that)."""
    p.add_argument(
        "--trace", metavar="FILE",
        default=os.environ.get("REPRO_TRACE") or None,
        help="run under a span tracer and write the span log to FILE "
             "on exit, plus a run manifest to FILE.manifest.json "
             "(default: $REPRO_TRACE if set, else tracing off; outputs "
             "are bit-identical either way)",
    )
    p.add_argument(
        "--trace-format", choices=["jsonl", "chrome"], default="jsonl",
        help="span-log format: one JSON record per line (readable by "
             "'obs summary') or Chrome trace-event JSON for "
             "chrome://tracing (default: jsonl)",
    )


def _add_engine_flags(p):
    """Scoring-engine knobs shared by every scoring subcommand. None of
    these flags changes any output bit; they only trade speed for
    resources."""
    p.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the scoring engine's parallel "
             "fan-out (default 1 = serial; results are bit-identical "
             "for any value)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the engine's content-addressed kernel cache "
             "(results are bit-identical either way)",
    )
    p.add_argument(
        "--cache-dir", metavar="DIR",
        default=os.environ.get("REPRO_CACHE_DIR") or None,
        help="directory for the engine's on-disk cache tier: measured "
             "suites and kernel results persist there under "
             "content-addressed keys, so repeat invocations start warm "
             "(default: $REPRO_CACHE_DIR if set, else memory-only; "
             "results are bit-identical either way)",
    )
    from repro.stats.backend import available_backends

    p.add_argument(
        "--backend", choices=available_backends(),
        default=os.environ.get("REPRO_BACKEND") or None,
        help="compute backend for the DTW / KS hot paths (default: "
             "$REPRO_BACKEND if set, else reference; every backend is "
             "bit-identical to the reference kernels)",
    )
    p.add_argument(
        "--shard-hosts", metavar="HOST:PORT,...",
        default=os.environ.get("REPRO_SHARDS") or None,
        help="comma-separated 'repro serve' daemons to shard DTW pair "
             "blocks and subset candidate batches across; a failed "
             "shard's blocks re-dispatch to the survivors (default: "
             "$REPRO_SHARDS if set, else no sharding; results are "
             "bit-identical at any shard count)",
    )
    p.add_argument(
        "--history-dir", metavar="DIR",
        default=os.environ.get("REPRO_HISTORY") or None,
        help="append this run's scorecard (bit-exact wire encoding), "
             "metrics snapshot, self-time totals and manifest to the "
             "longitudinal run-history store in DIR, keyed by config "
             "digest; inspect with 'repro obs history/diff/check' "
             "(default: $REPRO_HISTORY if set, else no recording; "
             "outputs are bit-identical either way)",
    )


def build_parser():
    parser = argparse.ArgumentParser(
        prog="perspector",
        description="Benchmark benchmark suites (DATE 2023 reproduction).",
    )
    parser.add_argument("--quick", action="store_true",
                        help="short-trace preset (fast, noisier)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_suites = sub.add_parser("suites", help="list modelled suites")
    _add_trace_flags(p_suites)

    p_score = sub.add_parser("score", help="score one suite")
    p_score.add_argument("suite", choices=available_suites())
    p_score.add_argument("--focus", default="all",
                         choices=["all", "llc", "tlb", "branch", "core"])
    p_score.add_argument(
        "--history-windows", type=int, default=0, metavar="N",
        help="with --history-dir: also record an N-point windowed "
             "trajectory inside this run -- cumulative prefixes of the "
             "suite's interval-sampled counter windows scored "
             "incrementally through the precompute-and-slice evaluator "
             "(default 0 = off; the printed scorecard is bit-identical "
             "either way)",
    )
    _add_engine_flags(p_score)
    _add_trace_flags(p_score)

    p_cmp = sub.add_parser("compare", help="compare suites jointly")
    p_cmp.add_argument("suites", nargs="+", choices=available_suites())
    p_cmp.add_argument("--focus", default="all",
                       choices=["all", "llc", "tlb", "branch", "core"])
    p_cmp.add_argument("--csv", metavar="PATH",
                       help="also write the comparison as CSV")
    p_cmp.add_argument("--bars", action="store_true",
                       help="print bar panels per score")
    _add_engine_flags(p_cmp)
    _add_trace_flags(p_cmp)

    p_sub = sub.add_parser(
        "subset", help="LHS subset generation / multi-candidate search"
    )
    p_sub.add_argument("suite", choices=available_suites())
    p_sub.add_argument("--size", type=int, default=8)
    p_sub.add_argument(
        "--search", type=int, default=None, metavar="N",
        help="evaluate up to N candidate subsets through the sliced "
             "evaluator (precomputes the full-suite kernels once) and "
             "report the lowest-mean-deviation one, instead of the "
             "single LHS subset",
    )
    p_sub.add_argument(
        "--method", default="lhs", choices=["lhs", "random", "swap"],
        help="candidate generation for --search: N maximin-LHS designs, "
             "N uniform draws, or a baseline-seeded greedy swap local "
             "search (default: lhs)",
    )
    _add_engine_flags(p_sub)
    _add_trace_flags(p_sub)

    p_exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    _add_engine_flags(p_exp)
    _add_trace_flags(p_exp)

    p_lint = sub.add_parser(
        "lint", help="run the QA static-analysis pass over the tree"
    )
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories (default: src/repro)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    p_lint.add_argument(
        "--deep", action="store_true",
        help="also run the whole-program effect analyzer: cache-purity, "
             "pool-safety and shm-readonly proven over the cross-module "
             "call graph (incremental via a digest-keyed summary cache)",
    )
    p_lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        dest="output_format",
        help="findings as diagnostics lines (default) or a JSON array "
             "for CI",
    )
    _add_trace_flags(p_lint)

    p_ana = sub.add_parser(
        "analyze", help="whole-program effect analysis queries"
    )
    ana_sub = p_ana.add_subparsers(dest="analyze_command", required=True)
    p_eff = ana_sub.add_parser(
        "effects",
        help="print a function's inferred effect set with one "
             "justifying call chain per effect",
    )
    p_eff.add_argument(
        "symbol",
        help="fully-qualified function (repro.engine.engine.Engine."
             "dtw_matrix) or a unique suffix (Engine.dtw_matrix)",
    )
    p_eff.add_argument(
        "--root", default="src/repro", metavar="DIR",
        help="project root to index (default: src/repro)",
    )
    _add_trace_flags(p_ana)

    p_qa = sub.add_parser(
        "qa", help="bit-for-bit determinism check of the scoring pipeline"
    )
    p_qa.add_argument("--seed", type=int, default=0)
    p_qa.add_argument("--focus", default="all",
                      choices=["all", "llc", "tlb", "branch", "core"])
    p_qa.add_argument("--full", action="store_true",
                      help="full-length traces (slower)")
    p_qa.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="also check engine invariance at this worker count "
             "(scorecards must be bit-identical to the serial path)",
    )
    from repro.stats.backend import available_backends

    p_qa.add_argument(
        "--backend", choices=available_backends(),
        default=os.environ.get("REPRO_BACKEND") or None,
        help="also cross-check this compute backend's scorecards "
             "bit-for-bit against the reference backend on every "
             "variant (default: $REPRO_BACKEND if set)",
    )
    p_qa.add_argument(
        "--serve", action="store_true",
        help="also run the service determinism variant: a scoring "
             "daemon's HTTP responses must be bit-identical to the "
             "one-shot CLI, warm requests must hit the shared caches, "
             "and shutdown must leak no shm segments or cache tmp files",
    )
    p_qa.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="also run the shard determinism variant: spin up N local "
             "scoring daemons as shard workers and diff sharded "
             "scorecards (cold, disk-warm, vectorized daemons, "
             "kill-one-shard) bit-for-bit against the serial oracle",
    )
    p_qa.add_argument(
        "--history", action="store_true",
        help="also run the history determinism variant: recording on "
             "vs off must be bit-identical, an equal-digest re-run "
             "must diff to zero, and perturbed bits / inflated wall "
             "time / degraded hit rates must each be flagged by "
             "'repro obs check'",
    )
    _add_trace_flags(p_qa)

    p_rep = sub.add_parser(
        "report", help="full suite report (scores + characterization)"
    )
    p_rep.add_argument("suite", help="suite name or path to a JSON spec")
    _add_trace_flags(p_rep)

    p_obs = sub.add_parser(
        "obs", help="observability utilities (span traces, run history)"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_sum = obs_sub.add_parser(
        "summary",
        help="render a JSONL span trace as a human report: top spans "
             "by self time, cache-tier hit rates, pool utilization",
    )
    # dest is trace_path, not trace: main() keys "run under a tracer"
    # off args.trace, and summarizing a trace must not be traced.
    p_sum.add_argument("trace_path", metavar="TRACE",
                       help="JSONL trace file (from --trace)")
    p_sum.add_argument("--top", type=int, default=15, metavar="N",
                       help="how many span names to rank by self time "
                            "(default 15)")

    def _history_store_flags(p):
        # dest is history_dir, matching the scoring subcommands' flag,
        # so $REPRO_HISTORY points both the writers and the readers at
        # the same store.
        p.add_argument(
            "--history-dir", metavar="DIR",
            default=os.environ.get("REPRO_HISTORY") or None,
            help="run-history store directory (default: $REPRO_HISTORY)",
        )

    p_hist = obs_sub.add_parser(
        "history",
        help="list recorded run trajectories grouped by config digest, "
             "with per-score sparkline-style drift strips ('*' first "
             "run, '=' bit-equal to the previous run, '!' drift)",
    )
    _history_store_flags(p_hist)
    p_hist.add_argument(
        "--digest", metavar="PREFIX", default=None,
        help="only trajectories whose config digest starts with PREFIX",
    )

    p_hdiff = obs_sub.add_parser(
        "diff",
        help="bit-exact diff of two recorded runs via their IEEE-754 "
             "hex bit patterns: under an equal config digest any "
             "changed bit is a determinism regression (exit 1); perf "
             "metrics (wall time, hit rates) diff as tolerance deltas",
    )
    _history_store_flags(p_hdiff)
    p_hdiff.add_argument(
        "runs", nargs="*", metavar="RUN",
        help="two run ids (full, unique prefix, or bare sequence "
             "number); omit both to diff the two most recent runs",
    )

    p_hcheck = obs_sub.add_parser(
        "check",
        help="scan recorded trajectories and exit nonzero on score "
             "drift (always fatal under an equal digest) or perf "
             "regressions beyond the thresholds",
    )
    _history_store_flags(p_hcheck)
    p_hcheck.add_argument(
        "--digest", metavar="PREFIX", default=None,
        help="only check trajectories whose config digest starts with "
             "PREFIX",
    )
    from repro.obs.history import (
        MAX_HIT_RATE_DROP,
        MAX_WALL_REGRESSION_PCT,
    )

    p_hcheck.add_argument(
        "--max-wall-pct", type=float, default=MAX_WALL_REGRESSION_PCT,
        metavar="PCT",
        help=f"flag a run slower than the best earlier run of its "
             f"trajectory by more than PCT percent (default "
             f"{MAX_WALL_REGRESSION_PCT:g}; negative disables)",
    )
    p_hcheck.add_argument(
        "--max-hit-drop", type=float, default=MAX_HIT_RATE_DROP,
        metavar="FRAC",
        help=f"flag a cache hit rate more than FRAC (absolute) below "
             f"the best earlier rate (default {MAX_HIT_RATE_DROP:g}; "
             f"negative disables)",
    )

    from repro.service.app import DEFAULT_HOST, DEFAULT_PORT

    p_serve = sub.add_parser(
        "serve",
        help="run the scoring daemon: one shared warm engine "
             "(persistent pool, kernel cache, disk tier) behind an "
             "HTTP/JSON API (POST /v1/score|compare|subset, "
             "POST /v1/shard/exec for shard-worker duty, "
             "GET /v1/metrics|health|history, POST /v1/shutdown)",
    )
    p_serve.add_argument("--host", default=DEFAULT_HOST,
                         help=f"bind address (default {DEFAULT_HOST})")
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help=f"bind port; 0 picks an ephemeral one "
                              f"(default {DEFAULT_PORT})")
    _add_engine_flags(p_serve)
    _add_trace_flags(p_serve)

    p_client = sub.add_parser(
        "client", help="talk to a running scoring daemon"
    )
    client_sub = p_client.add_subparsers(dest="client_command",
                                         required=True)

    def _client_parser(name, help_text):
        p = client_sub.add_parser(name, help=help_text)
        p.add_argument("--host", default=DEFAULT_HOST)
        p.add_argument("--port", type=int, default=DEFAULT_PORT)
        p.add_argument("--timeout", type=float, default=600.0,
                       metavar="SECONDS",
                       help="read timeout per request (default 600)")
        p.add_argument("--connect-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="TCP connect timeout (default 10; an "
                            "unreachable daemon fails fast instead of "
                            "hanging for the full read timeout)")
        p.add_argument("--retries", type=int, default=2, metavar="N",
                       help="extra attempts after a connection failure, "
                            "with exponential backoff (default 2; HTTP "
                            "errors are never retried)")
        return p

    p_cs = _client_parser(
        "score",
        "score one suite on the daemon; prints byte-for-byte what "
        "'repro score' prints",
    )
    p_cs.add_argument("suite", choices=available_suites())
    p_cs.add_argument("--focus", default="all",
                      choices=["all", "llc", "tlb", "branch", "core"])
    p_cc = _client_parser("compare", "compare suites on the daemon")
    p_cc.add_argument("suites", nargs="+", choices=available_suites())
    p_cc.add_argument("--focus", default="all",
                      choices=["all", "llc", "tlb", "branch", "core"])
    p_cb = _client_parser("subset", "subset generation/search on the "
                                    "daemon")
    p_cb.add_argument("suite", choices=available_suites())
    p_cb.add_argument("--size", type=int, default=8)
    p_cb.add_argument("--search", type=int, default=None, metavar="N")
    p_cb.add_argument("--method", default="lhs",
                      choices=["lhs", "random", "swap"])
    _client_parser("metrics", "live engine metrics snapshot (JSON)")
    _client_parser("health", "daemon liveness + configuration + uptime "
                             "and per-endpoint request counts (JSON)")
    _client_parser("history", "the daemon's recorded-run summaries "
                              "(JSON; requires the daemon to run with "
                              "--history-dir)")
    _client_parser("shutdown", "graceful drain-and-stop")
    _add_trace_flags(p_client)

    p_shard = sub.add_parser(
        "shard",
        help="shard-coordinator utilities (multi-host scoring fan-out)",
    )
    shard_sub = p_shard.add_subparsers(dest="shard_command",
                                       required=True)
    p_shard_status = shard_sub.add_parser(
        "status",
        help="probe each shard daemon's /v1/health and print one "
             "status line per shard; exits nonzero if any is down",
    )
    p_shard_status.add_argument(
        "--shard-hosts", metavar="HOST:PORT,...",
        default=os.environ.get("REPRO_SHARDS") or None,
        help="shard daemons to probe (default: $REPRO_SHARDS)",
    )
    p_shard_status.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS",
        help="connect/read timeout per probe (default 5)",
    )
    _add_trace_flags(p_shard)
    return parser


def _cmd_report(args):
    from repro.perf.report import build_report, render_report
    from repro.workloads import load_suite as load_builtin

    config = _config(args)
    if args.suite in available_suites():
        suite = load_builtin(args.suite)
    else:
        from repro.workloads.custom import suite_from_json

        suite = suite_from_json(args.suite)
    report = build_report(suite, config.session(),
                          metric_seed=config.metric_seed)
    print(render_report(report))
    return 0


def _run_traced(handler, args, argv):
    """Run one subcommand under a span tracer; write the span log and
    its run manifest on success (tracing changes no output bit)."""
    from repro.obs import (
        Tracer,
        build_manifest,
        install,
        manifest_path,
        uninstall,
        write_manifest,
        write_trace,
    )

    fmt = args.trace_format
    tracer = install(Tracer())
    try:
        with tracer.span(f"cli.{args.command}"):
            status = handler(args)
    finally:
        uninstall()
    count = write_trace(tracer.spans(), args.trace, fmt)
    manifest = build_manifest(
        command=args.command,
        argv=list(sys.argv[1:] if argv is None else argv),
        config=dict(vars(args)),
        trace_file=args.trace,
        trace_format=fmt,
    )
    write_manifest(manifest_path(args.trace), manifest)
    print(f"wrote {count} spans to {args.trace} ({fmt}); manifest at "
          f"{manifest_path(args.trace)}", file=sys.stderr)
    return status


#: Subcommands whose runs the history store records.
_HISTORY_COMMANDS = {"score", "compare", "subset", "experiment"}

#: args entries that never change an output bit and therefore stay out
#: of the history record's config digest: a traced and an untraced run
#: (or two runs recording into different stores) share one trajectory.
_NON_CONFIG_ARGS = ("trace", "trace_format", "history_dir")


def _run_history(handler, args, argv):
    """Run one scoring subcommand with history recording (and a span
    tracer, so the record carries self-time totals); append the record
    to the ``--history-dir`` store on success. Recording changes no
    output bit (``repro qa --history`` enforces that); if ``--trace``
    was also given, the span log and its manifest are written exactly
    as in :func:`_run_traced`.
    """
    import time

    from repro.obs import (
        HistoryStore,
        Tracer,
        build_manifest,
        build_record,
        install,
        install_recorder,
        manifest_path,
        uninstall,
        uninstall_recorder,
        write_manifest,
        write_trace,
    )

    tracer = install(Tracer())
    recorder = install_recorder()
    start = time.perf_counter()
    try:
        with tracer.span(f"cli.{args.command}"):
            status = handler(args)
    finally:
        uninstall()
        uninstall_recorder()
    wall_s = time.perf_counter() - start
    spans = tracer.spans()
    config = {k: v for k, v in vars(args).items()
              if k not in _NON_CONFIG_ARGS}
    trace = getattr(args, "trace", None)
    fmt = getattr(args, "trace_format", "jsonl")
    manifest = build_manifest(
        command=args.command,
        argv=list(sys.argv[1:] if argv is None else argv),
        config=config,
        trace_file=trace,
        trace_format=fmt if trace else None,
    )
    if trace:
        count = write_trace(spans, trace, fmt)
        write_manifest(manifest_path(trace), manifest)
        print(f"wrote {count} spans to {trace} ({fmt}); manifest at "
              f"{manifest_path(trace)}", file=sys.stderr)
    if status == 0:
        record = build_record(args.command, manifest, recorder,
                              spans=spans, wall_s=wall_s)
        path = HistoryStore(args.history_dir).append(record)
        print(f"recorded run {record['config_digest'][:12]} to {path}",
              file=sys.stderr)
    return status


def main(argv=None):
    args = build_parser().parse_args(argv)
    handlers = {
        "suites": _cmd_suites,
        "score": _cmd_score,
        "compare": _cmd_compare,
        "subset": _cmd_subset,
        "experiment": _cmd_experiment,
        "report": _cmd_report,
        "lint": _cmd_lint,
        "analyze": _cmd_analyze,
        "qa": _cmd_qa,
        "obs": _cmd_obs,
        "serve": _cmd_serve,
        "client": _cmd_client,
        "shard": _cmd_shard,
    }
    handler = handlers[args.command]
    if getattr(args, "history_dir", None) \
            and args.command in _HISTORY_COMMANDS:
        return _run_history(handler, args, argv)
    if getattr(args, "trace", None):
        return _run_traced(handler, args, argv)
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
