"""Greedy max-min (farthest-point) subset selection.

A strong classical space-filling baseline: start from the workload
closest to the suite centroid, then repeatedly add the workload whose
minimum distance to the already-chosen set is largest. Deterministic,
no randomness -- the natural foil for the LHS generator in the
subsetting ablation.
"""

from __future__ import annotations

import numpy as np

from repro.core.matrix import CounterMatrix
from repro.stats.distance import pairwise_distances
from repro.stats.preprocessing import minmax_normalize


class GreedyMaxMinSubsetter:
    """Farthest-point-first subset selection on the normalized matrix."""

    def __init__(self, subset_size):
        if subset_size < 1:
            raise ValueError("subset_size must be >= 1")
        self.subset_size = subset_size

    def select(self, matrix):
        """Return the chosen workload names, in selection order."""
        if not isinstance(matrix, CounterMatrix):
            raise TypeError("select needs a CounterMatrix")
        n = matrix.n_workloads
        if self.subset_size > n:
            raise ValueError(
                f"subset_size {self.subset_size} exceeds suite size {n}"
            )
        x = minmax_normalize(matrix.values)
        d = pairwise_distances(x)

        centroid = x.mean(axis=0)
        first = int(np.argmin(np.linalg.norm(x - centroid, axis=1)))
        chosen = [first]
        while len(chosen) < self.subset_size:
            min_dist = d[:, chosen].min(axis=1)
            min_dist[chosen] = -np.inf
            chosen.append(int(np.argmax(min_dist)))
        return tuple(matrix.workloads[i] for i in chosen)
