"""The prior-work pipeline: normalize -> PCA -> hierarchical clustering.

This is the methodology of Phansalkar et al. [17, 19] and the SPEC'17
characterizations [15, 16] as summarized in Section II: reduce the
normalized counter matrix with PCA, build a dendrogram over the principal
components with hierarchical clustering, cut it into k clusters, and run
one representative per cluster. Section II's critique -- no cluster-
quality metric, no phase awareness, no cross-suite comparability -- is
exactly what the Perspector scores add; this implementation exists so the
benches can compare the two approaches on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.matrix import CounterMatrix
from repro.stats.hierarchical import fcluster_by_count, linkage_matrix
from repro.stats.pca import PCA
from repro.stats.preprocessing import minmax_normalize, zscore_normalize


@dataclass(frozen=True)
class PriorWorkClusters:
    """Outcome of the prior-work clustering pipeline.

    Attributes
    ----------
    labels:
        Cluster index per workload.
    transformed:
        Workloads in PCA space.
    representatives:
        One workload name per cluster: the member closest to its
        cluster's centroid (the workload prior work would actually run).
    """

    labels: np.ndarray
    transformed: np.ndarray
    representatives: tuple


def prior_work_clusters(matrix, n_clusters, variance=0.98,
                        linkage="average", scaling="zscore"):
    """Run the normalize -> PCA -> hierarchical-clustering pipeline.

    Parameters
    ----------
    matrix:
        :class:`CounterMatrix` of suite measurements.
    n_clusters:
        Dendrogram cut (== subset size in the subsetting use).
    variance:
        PCA retained-variance target.
    linkage:
        Hierarchical linkage criterion (prior work uses average/Ward).
    scaling:
        ``zscore`` (the literature's choice) or ``minmax``.

    Returns
    -------
    PriorWorkClusters
    """
    if not isinstance(matrix, CounterMatrix):
        raise TypeError("prior_work_clusters needs a CounterMatrix")
    if not (1 <= n_clusters <= matrix.n_workloads):
        raise ValueError(
            f"n_clusters must be in [1, {matrix.n_workloads}], "
            f"got {n_clusters}"
        )
    if scaling == "zscore":
        x = zscore_normalize(matrix.values)
    elif scaling == "minmax":
        x = minmax_normalize(matrix.values)
    else:
        raise ValueError(f"unknown scaling {scaling!r}")
    pca = PCA(variance=variance).fit_transform(x)
    z = pca.transformed
    if n_clusters == matrix.n_workloads:
        labels = np.arange(matrix.n_workloads)
    else:
        merges = linkage_matrix(z, linkage=linkage)
        labels = fcluster_by_count(merges, n_clusters)

    representatives = []
    for c in range(n_clusters):
        members = np.where(labels == c)[0]
        centroid = z[members].mean(axis=0)
        dists = np.linalg.norm(z[members] - centroid, axis=1)
        representatives.append(matrix.workloads[members[int(np.argmin(dists))]])
    return PriorWorkClusters(
        labels=labels,
        transformed=z,
        representatives=tuple(representatives),
    )


class PCAHierarchicalSubsetter:
    """Subset selection the prior-work way: one representative per
    hierarchical cluster in PCA space."""

    def __init__(self, subset_size, variance=0.98, linkage="average",
                 scaling="zscore"):
        if subset_size < 1:
            raise ValueError("subset_size must be >= 1")
        self.subset_size = subset_size
        self.variance = variance
        self.linkage = linkage
        self.scaling = scaling

    def select(self, matrix):
        """Return the chosen workload names."""
        result = prior_work_clusters(
            matrix, self.subset_size, variance=self.variance,
            linkage=self.linkage, scaling=self.scaling,
        )
        return result.representatives
