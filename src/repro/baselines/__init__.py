"""Prior-work baselines (Table I of the paper).

The suite-characterization literature the paper positions itself against
([15]-[19]) shares one methodology: normalize the counter matrix, reduce
with PCA, cluster the principal components *hierarchically*, and pick one
representative workload per cluster. This package implements that
pipeline (:mod:`repro.baselines.pca_hierarchical`) plus simple subsetting
baselines (random, greedy max-min) so the LHS generator of Section IV-C
has something to beat in the ablation benches.
"""

from repro.baselines.pca_hierarchical import (
    PCAHierarchicalSubsetter,
    prior_work_clusters,
)
from repro.baselines.greedy_subset import GreedyMaxMinSubsetter

__all__ = [
    "PCAHierarchicalSubsetter",
    "prior_work_clusters",
    "GreedyMaxMinSubsetter",
]
