"""Prior-work baselines (Table I of the paper).

The suite-characterization literature the paper positions itself against
([15]-[19]) shares one methodology: normalize the counter matrix, reduce
with PCA, cluster the principal components *hierarchically*, and pick one
representative workload per cluster. This package implements that
pipeline (:mod:`repro.baselines.pca_hierarchical`) plus simple subsetting
baselines (random, greedy max-min) so the LHS generator of Section IV-C
has something to beat in the ablation benches.
"""

from repro.baselines.pca_hierarchical import (
    PCAHierarchicalSubsetter,
    prior_work_clusters,
)
from repro.baselines.greedy_subset import GreedyMaxMinSubsetter


def baseline_subsets(matrix, subset_size):
    """The deterministic prior-work subsets of one suite, by method.

    Used as seed candidates by the swap local search
    (:class:`repro.engine.subset_eval.SubsetSearch`): both baselines are
    deterministic functions of the matrix, so they cost nothing to
    reproduce and give the search a non-random starting pool.

    Returns
    -------
    dict
        ``{method_name: workload-name tuple}``, in a fixed order.
    """
    return {
        "prior_pca_hierarchical": tuple(
            PCAHierarchicalSubsetter(subset_size=subset_size).select(matrix)
        ),
        "greedy_maxmin": tuple(
            GreedyMaxMinSubsetter(subset_size=subset_size).select(matrix)
        ),
    }


__all__ = [
    "PCAHierarchicalSubsetter",
    "prior_work_clusters",
    "GreedyMaxMinSubsetter",
    "baseline_subsets",
]
