"""Synthetic suites with ground-truth quality knobs.

The six Table III models reproduce *specific* suites. This module
generates *parameterized* suites whose Perspector-relevant properties
are set by construction:

* ``diversity`` in [0, 1] -- 0: every workload is a jittered copy of one
  template (maximally redundant, should score a high ClusterScore);
  1: every workload has an independent random profile.
* ``phase_richness`` in [0, 1] -- 0: single flat phase per workload;
  1: several phases with strongly contrasting behaviour (should raise
  the TrendScore).
* ``extremity`` in [0, 1] -- how far working-set sizes and intensities
  range across the machine's capacity corners (should raise the
  CoverageScore).

Because the knobs are ground truth, the generator closes the validation
loop: the metric-validation tests check that each Perspector score is
monotone in its knob *through the whole simulation stack*, which is the
strongest end-to-end correctness evidence this reproduction has.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import KernelSpec, Phase, Suite, Workload

KB = 1024
MB = 1024 * 1024

#: Kernels eligible for random profiles, with the parameter ranges the
#: extremity knob interpolates over: (min working set, max working set).
_KERNEL_RANGES = {
    "sequential_stream": (64 * KB, 128 * MB),
    "random_uniform": (64 * KB, 64 * MB),
    "zipfian": (256 * KB, 64 * MB),
    "pointer_chase": (128 * KB, 48 * MB),
    "page_stride": (4 * MB, 256 * MB),
}

_BRANCH_MODELS = ("biased", "loop", "random")


def _log_uniform(rng, lo, hi):
    return float(np.exp(rng.uniform(np.log(lo), np.log(hi))))


def _draw_profile(rng, extremity):
    """One random phase profile: kernel mix + branch + intensity."""
    names = list(_KERNEL_RANGES)
    k = int(rng.integers(1, 3))
    chosen = rng.choice(len(names), size=k, replace=False)
    kernels = []
    for idx in chosen:
        name = names[int(idx)]
        lo, hi = _KERNEL_RANGES[name]
        # Extremity widens the reachable size range beyond a mild core.
        hi_eff = lo * 4 + extremity * (hi - lo * 4)
        ws = _log_uniform(rng, lo, max(hi_eff, lo * 2))
        kernels.append(
            KernelSpec(name, weight=float(rng.uniform(0.3, 1.0)),
                       params={"working_set": int(ws)})
        )
    model = _BRANCH_MODELS[int(rng.integers(len(_BRANCH_MODELS)))]
    if model == "biased":
        params = {"n_sites": int(rng.integers(16, 256)),
                  "taken_prob": float(rng.uniform(0.55, 0.95))}
    elif model == "loop":
        params = {"body": int(rng.integers(4, 40)),
                  "n_sites": int(rng.integers(2, 24))}
    else:
        params = {"n_sites": int(rng.integers(32, 256)),
                  "taken_prob": float(rng.uniform(0.4, 0.6))}
    return {
        "kernels": tuple(kernels),
        "write_fraction": float(rng.uniform(0.05, 0.7)),
        "branch_model": model,
        "branch_params": params,
        "branches_per_op": float(rng.uniform(0.05, 0.8)),
        "alu_per_op": float(rng.uniform(0.5, 12.0)),
        "intensity": float(
            1.0 + extremity * rng.uniform(-0.6, 1.0)
        ),
    }


def _blend_profiles(template, own, diversity):
    """Interpolate a workload profile between the suite template and its
    own independent draw: geometric for sizes, linear for rates. At
    diversity 0 the template wins (plus nothing); at 1 the own draw
    wins; categorical fields switch at 0.5."""
    d = diversity

    def lin(a, b):
        return float((1 - d) * a + d * b)

    def geo(a, b):
        return float(np.exp((1 - d) * np.log(a) + d * np.log(b)))

    source = own if d >= 0.5 else template
    kernels = []
    for spec in source["kernels"]:
        ws = spec.params.get("working_set")
        # Pair sizes against the other profile's first kernel for the
        # interpolation anchor.
        other = (template if source is own else own)["kernels"][0]
        other_ws = other.params.get("working_set", ws)
        kernels.append(
            KernelSpec(spec.kernel, weight=spec.weight,
                       params={"working_set": int(geo(other_ws, ws))
                               if source is own
                               else int(geo(ws, other_ws))})
        )
    return {
        "kernels": tuple(kernels),
        "write_fraction": lin(template["write_fraction"],
                              own["write_fraction"]),
        "branch_model": source["branch_model"],
        "branch_params": dict(source["branch_params"]),
        "branches_per_op": lin(template["branches_per_op"],
                               own["branches_per_op"]),
        "alu_per_op": lin(template["alu_per_op"], own["alu_per_op"]),
        "intensity": lin(template["intensity"], own["intensity"]),
    }


def _profile_to_phase(profile, name, weight):
    return Phase(
        name=name,
        weight=weight,
        kernels=profile["kernels"],
        write_fraction=min(max(profile["write_fraction"], 0.0), 1.0),
        branch_model=profile["branch_model"],
        branch_params=dict(profile["branch_params"]),
        branches_per_op=max(profile["branches_per_op"], 0.0),
        alu_per_op=max(profile["alu_per_op"], 0.0),
        intensity=max(profile["intensity"], 0.1),
    )


def make_grouped_suite(n_workloads=10, n_groups=2, within_jitter=0.05,
                       phase_richness=0.2, extremity=0.5, seed=0,
                       name=None):
    """Generate a suite whose workloads fall into ``n_groups`` families.

    This is the ground truth for the *ClusterScore*: the score rewards
    detecting separated groups of near-duplicate workloads (Eq. 3's
    silhouette is high only when tight clusters are far apart -- a
    single homogeneous blob scores low, which is also why Ligra's two
    algorithm families, not its overall homogeneity, drive its Fig. 3a
    result). ``within_jitter`` is the diversity *inside* each family.

    Returns
    -------
    repro.workloads.base.Suite
    """
    if n_groups < 1 or n_groups > n_workloads:
        raise ValueError(
            f"n_groups must be in [1, {n_workloads}], got {n_groups}"
        )
    rng = np.random.default_rng(seed)
    templates = [_draw_profile(rng, extremity) for _ in range(n_groups)]
    n_phases = 1 + int(round(phase_richness * 3))

    workloads = []
    for i in range(n_workloads):
        template = templates[i % n_groups]
        own = _draw_profile(rng, extremity)
        base_profile = _blend_profiles(template, own, within_jitter)
        phases = []
        raw_weights = rng.uniform(0.5, 1.5, size=n_phases)
        for p in range(n_phases):
            profile = base_profile if p == 0 else _blend_profiles(
                base_profile, _draw_profile(rng, extremity), phase_richness
            )
            phases.append(
                _profile_to_phase(profile, f"phase{p}",
                                  float(raw_weights[p]))
            )
        workloads.append(Workload(f"grp{i % n_groups}_{i:02d}",
                                  tuple(phases)))
    return Suite(
        name=name or f"grouped-{n_groups}g",
        workloads=tuple(workloads),
        description=(
            f"synthetic grouped suite: {n_groups} families, "
            f"within-family jitter {within_jitter}"
        ),
    )


def make_synthetic_suite(n_workloads=10, diversity=0.5, phase_richness=0.5,
                         extremity=0.5, seed=0, name=None):
    """Generate a suite with ground-truth quality knobs.

    Parameters
    ----------
    n_workloads:
        Suite size (>= 4 so the ClusterScore is defined).
    diversity / phase_richness / extremity:
        The knobs described in the module docstring, each in [0, 1].
    seed:
        Generator seed; the same arguments reproduce the same suite.
    name:
        Optional suite name.

    Returns
    -------
    repro.workloads.base.Suite
    """
    for label, value in (("diversity", diversity),
                         ("phase_richness", phase_richness),
                         ("extremity", extremity)):
        if not (0.0 <= value <= 1.0):
            raise ValueError(f"{label} must be in [0, 1], got {value}")
    if n_workloads < 2:
        raise ValueError("n_workloads must be >= 2")
    rng = np.random.default_rng(seed)
    template = _draw_profile(rng, extremity)
    n_phases = 1 + int(round(phase_richness * 3))

    workloads = []
    for i in range(n_workloads):
        own = _draw_profile(rng, extremity)
        base_profile = _blend_profiles(template, own, diversity)
        phases = []
        raw_weights = rng.uniform(0.5, 1.5, size=n_phases)
        for p in range(n_phases):
            if p == 0:
                profile = base_profile
            else:
                # Later phases contrast with the first in proportion to
                # phase_richness (a fresh draw blended in).
                contrast = _draw_profile(rng, extremity)
                profile = _blend_profiles(base_profile, contrast,
                                          phase_richness)
            phases.append(
                _profile_to_phase(profile, f"phase{p}",
                                  float(raw_weights[p]))
            )
        workloads.append(Workload(f"syn{i:02d}", tuple(phases)))

    return Suite(
        name=name or (
            f"synthetic-d{diversity:.1f}-p{phase_richness:.1f}"
            f"-e{extremity:.1f}"
        ),
        workloads=tuple(workloads),
        description=(
            f"synthetic suite: diversity={diversity}, "
            f"phase_richness={phase_richness}, extremity={extremity}"
        ),
    )
