"""Trace analysis: characterize a workload model's memory behaviour.

Diagnostics over the raw trace intervals, *before* any simulation: the
memory footprint, page footprint, spatial locality, store fraction, and
a sampled reuse-distance profile. The suite-model docstrings make claims
("small cache-resident kernels", "TLB torture") -- these statistics are
how the tests hold the models to them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

LINE_BYTES = 64
PAGE_BYTES = 4096


@dataclass(frozen=True)
class TraceProfile:
    """Summary statistics of one workload's generated trace.

    Attributes
    ----------
    n_accesses:
        Total memory operations profiled.
    footprint_bytes:
        Distinct cache lines touched x line size.
    page_footprint:
        Distinct pages touched.
    store_fraction:
        Fraction of operations that are stores.
    sequential_fraction:
        Fraction of successive access pairs within +/- 2 lines (spatial
        locality proxy).
    page_change_rate:
        Fraction of successive pairs that switch pages (dTLB pressure
        proxy).
    median_reuse_distance:
        Median unique-line reuse distance of re-referenced lines
        (sampled); ``inf`` when nothing is ever reused.
    branch_per_op:
        Branch instructions per memory operation.
    """

    n_accesses: int
    footprint_bytes: int
    page_footprint: int
    store_fraction: float
    sequential_fraction: float
    page_change_rate: float
    median_reuse_distance: float
    branch_per_op: float


def reuse_distances(line_addresses, max_samples=20_000):
    """Unique-line reuse distances (LRU stack distances, sampled).

    For each re-reference of a line, the number of *distinct* other
    lines touched since its previous reference. First touches are
    excluded. The exact O(n * u) computation is capped by sampling when
    the trace is long.
    """
    lines = np.asarray(line_addresses)
    if lines.shape[0] > max_samples:
        # Profile a contiguous window: reuse structure is local.
        lines = lines[:max_samples]
    last_seen = {}
    stack = []  # LRU order, most recent last
    distances = []
    for line in lines.tolist():
        if line in last_seen:
            idx = stack.index(line)
            distances.append(len(stack) - 1 - idx)
            stack.pop(idx)
        stack.append(line)
        last_seen[line] = True
    return np.array(distances, dtype=float)


def profile_intervals(intervals):
    """Profile a stream of trace intervals.

    Returns
    -------
    TraceProfile
    """
    intervals = list(intervals)
    if not intervals:
        raise ValueError("no intervals to profile")
    addresses = np.concatenate([iv.addresses for iv in intervals])
    writes = np.concatenate([iv.is_write for iv in intervals])
    n_branches = sum(iv.n_branches for iv in intervals)
    if addresses.shape[0] == 0:
        raise ValueError("trace has no memory accesses")

    lines = addresses // LINE_BYTES
    pages = addresses // PAGE_BYTES
    deltas = np.abs(np.diff(lines))
    page_changes = np.diff(pages) != 0

    reuse = reuse_distances(lines)
    median_reuse = float(np.median(reuse)) if reuse.size else float("inf")

    return TraceProfile(
        n_accesses=int(addresses.shape[0]),
        footprint_bytes=int(np.unique(lines).size * LINE_BYTES),
        page_footprint=int(np.unique(pages).size),
        store_fraction=float(writes.mean()),
        sequential_fraction=float((deltas <= 2).mean()) if deltas.size
        else 1.0,
        page_change_rate=float(page_changes.mean()) if page_changes.size
        else 0.0,
        median_reuse_distance=median_reuse,
        branch_per_op=n_branches / addresses.shape[0],
    )


def profile_workload(workload, n_intervals=8, ops_per_interval=500,
                     seed=0):
    """Profile a workload by materializing a short trace."""
    return profile_intervals(
        workload.intervals(n_intervals, ops_per_interval, seed=seed)
    )


def footprint_table(suite, n_intervals=6, ops_per_interval=400, seed=0):
    """Text table of every suite member's trace profile."""
    header = (
        f"{'workload':<20} {'footprint':>10} {'pages':>7} {'seq%':>6} "
        f"{'pgchg%':>7} {'store%':>7}"
    )
    lines = [header, "-" * len(header)]
    for workload in suite:
        p = profile_workload(workload, n_intervals, ops_per_interval, seed)
        footprint_mb = p.footprint_bytes / (1024 * 1024)
        lines.append(
            f"{workload.name:<20} {footprint_mb:>8.1f}MB "
            f"{p.page_footprint:>7} {p.sequential_fraction:>6.0%} "
            f"{p.page_change_rate:>7.0%} {p.store_fraction:>7.0%}"
        )
    return "\n".join(lines)
