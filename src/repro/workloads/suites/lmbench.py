"""LMbench suite model.

LMbench [8] is a set of *microbenchmarks*, each designed to measure one
latency or bandwidth figure of the OS/hardware stack in isolation. The
paper's Section IV-A attributes LMbench's highest-in-class CoverageScore
to exactly this: each member drives one subsystem to an extreme the full
applications never reach (memory bandwidth, page-fault cost, syscall
latency, ...), stretching the parameter space.

The model gives every microbenchmark a *single flat phase* (micro-
benchmarks lack phase behaviour -- Section III, criterion 2 -- which is
why LMbench's TrendScore is poor) whose kernel pins one extreme corner.
"""

from __future__ import annotations

from repro.workloads.base import KernelSpec, Phase, Suite, Workload

KB = 1024
MB = 1024 * 1024


def _single_phase(name, kernels, **kwargs):
    return Workload(name, (Phase(name=f"{name}_loop", weight=1.0,
                                 kernels=tuple(kernels), **kwargs),))


def build():
    """Build the LMbench suite model (10 microbenchmarks)."""
    workloads = (
        # Memory-latency probe: the classic back-to-back load chain laid
        # out at a fixed 128 B stride over a DRAM-sized region. Every
        # access misses the LLC (new line, no prefetcher) but pages turn
        # over only every 32 loads, so the dTLB stays comfortable --
        # which is why LMbench's TLB-focused coverage collapses (Fig. 3c)
        # while its LLC-focused coverage stays top (Fig. 3b).
        _single_phase(
            "lat_mem_rd",
            [KernelSpec("sequential_stream",
                        params={"working_set": 64 * MB, "stride": 128})],
            write_fraction=0.0, branch_model="loop",
            branch_params={"body": 60, "n_sites": 2},
            branches_per_op=0.02, alu_per_op=0.5,
        ),
        # Memory-bandwidth probe: pure streaming. Extreme access volume,
        # near-zero miss *rate* per byte, heavy stores.
        _single_phase(
            "bw_mem",
            [KernelSpec("sequential_stream", params={"working_set": 128 * MB})],
            write_fraction=0.5, branch_model="loop",
            branch_params={"body": 100, "n_sites": 1},
            branches_per_op=0.01, alu_per_op=0.3, intensity=1.25,
        ),
        # Null-syscall latency: tiny kernel-entry footprint, branch heavy.
        _single_phase(
            "lat_syscall",
            [KernelSpec("hot_cold", params={"hot_bytes": 8 * KB,
                                            "cold_bytes": 64 * KB})],
            write_fraction=0.2, branch_model="biased",
            branch_params={"n_sites": 400, "taken_prob": 0.9},
            branches_per_op=1.2, alu_per_op=2.0, intensity=0.9,
        ),
        # Signal-delivery latency: unpredictable control flow.
        _single_phase(
            "lat_sig",
            [KernelSpec("hot_cold", params={"hot_bytes": 16 * KB,
                                            "cold_bytes": 256 * KB})],
            write_fraction=0.3, branch_model="random",
            branch_params={"n_sites": 256, "taken_prob": 0.5},
            branches_per_op=1.0, alu_per_op=1.5, intensity=0.9,
        ),
        # Page-fault latency: touches fresh pages forever. Extreme
        # page-fault and dTLB-walk rates.
        _single_phase(
            "lat_pagefault",
            [KernelSpec("fresh_pages", params={"touches_per_page": 24})],
            write_fraction=0.6, branch_model="loop",
            branch_params={"body": 30, "n_sites": 2},
            branches_per_op=0.05, alu_per_op=0.5, intensity=0.9,
        ),
        # mmap/TLB probe: one access per page over a huge mapping.
        _single_phase(
            "lat_mmap",
            [KernelSpec("page_stride", params={"working_set": 512 * MB})],
            write_fraction=0.1, branch_model="loop",
            branch_params={"body": 45, "n_sites": 2},
            branches_per_op=0.03, alu_per_op=0.5,
        ),
        # Cached file-read bandwidth: streaming page-cache copies. Unit
        # stride: strong spatial locality, TLB friendly.
        _single_phase(
            "bw_file_rd",
            [KernelSpec("sequential_stream",
                        params={"working_set": 96 * MB})],
            write_fraction=0.45, branch_model="loop",
            branch_params={"body": 70, "n_sites": 3},
            branches_per_op=0.04, alu_per_op=0.8, intensity=1.15,
        ),
        # Context-switch latency: cache pollution between small processes.
        _single_phase(
            "lat_ctx",
            [KernelSpec("random_uniform", weight=0.7,
                        params={"working_set": 4 * MB}),
             KernelSpec("sequential_stream", weight=0.3,
                        params={"working_set": 2 * MB})],
            write_fraction=0.4, branch_model="biased",
            branch_params={"n_sites": 120, "taken_prob": 0.8},
            branches_per_op=0.6, alu_per_op=1.5, intensity=0.9,
        ),
        # Process-creation latency: fork/exec copies a small image around;
        # syscall- and branch-heavy, modest footprint.
        _single_phase(
            "lat_proc",
            [KernelSpec("sequential_stream", weight=0.6,
                        params={"working_set": 8 * MB}),
             KernelSpec("hot_cold", weight=0.4,
                        params={"hot_bytes": 64 * KB,
                                "cold_bytes": 2 * MB})],
            write_fraction=0.65, branch_model="biased",
            branch_params={"n_sites": 200, "taken_prob": 0.85},
            branches_per_op=0.5, alu_per_op=1.2, intensity=0.9,
        ),
        # Pipe bandwidth: small-buffer copy loop, L2 resident.
        _single_phase(
            "bw_pipe",
            [KernelSpec("sequential_stream", params={"working_set": 128 * KB})],
            write_fraction=0.5, branch_model="loop",
            branch_params={"body": 80, "n_sites": 2},
            branches_per_op=0.02, alu_per_op=0.4, intensity=1.25,
        ),
    )
    return Suite(
        name="lmbench",
        workloads=workloads,
        description=(
            "Micro-benchmarks measuring the latency and bandwidth of "
            "different OS and memory-system operations; each member "
            "stresses one extreme corner."
        ),
    )
