"""SGXGauge suite model (non-SGX versions, as the paper uses).

SGXGauge [31] collects real-world workloads from different domains --
graph analytics, databases, key-value stores, crypto, ML. Like PARSEC it
consists of full applications with genuine phase structure, which is why
the two share the top TrendScore tier in Fig. 3a. Fig. 1 of the paper
normalizes the LLC-miss trends of five of its members (PageRank,
HashJoin, BFS, BTree, OpenSSL); those five appear here by name so the
Fig. 1 experiment can reference them directly.
"""

from __future__ import annotations

from repro.workloads.base import KernelSpec, Phase, Suite, Workload

KB = 1024
MB = 1024 * 1024


def _pagerank():
    return Workload("pagerank", (
        Phase("load_graph", 0.25,
              (KernelSpec("sequential_stream",
                          params={"working_set": 80 * MB}),),
              write_fraction=0.4, branch_model="loop",
              branch_params={"body": 20, "n_sites": 8},
              branches_per_op=0.2, alu_per_op=2.0),
        Phase("iterate", 0.6,
              (KernelSpec("gather_scatter", weight=0.7,
                          params={"index_bytes": 20 * MB,
                                  "data_bytes": 48 * MB}),
               KernelSpec("sequential_stream", weight=0.3,
                          params={"working_set": 24 * MB})),
              write_fraction=0.35,
              branch_params={"n_sites": 30, "taken_prob": 0.9},
              branches_per_op=0.3, alu_per_op=4.0),
        Phase("converge", 0.15,
              (KernelSpec("sequential_stream",
                          params={"working_set": 24 * MB}),),
              write_fraction=0.2, branches_per_op=0.25, alu_per_op=3.0,
              intensity=0.7),
    ))


def _hashjoin():
    return Workload("hashjoin", (
        Phase("build", 0.4,
              (KernelSpec("random_uniform",
                          params={"working_set": 32 * MB}),),
              write_fraction=0.7,
              branch_params={"n_sites": 40, "taken_prob": 0.85},
              branches_per_op=0.35, alu_per_op=2.0),
        Phase("probe", 0.6,
              (KernelSpec("random_uniform", weight=0.8,
                          params={"working_set": 48 * MB}),
               KernelSpec("sequential_stream", weight=0.2,
                          params={"working_set": 64 * MB})),
              write_fraction=0.1,
              branch_params={"n_sites": 50, "taken_prob": 0.7},
              branches_per_op=0.45, alu_per_op=1.8, intensity=1.2),
    ))


def _bfs():
    return Workload("bfs", (
        Phase("load", 0.2,
              (KernelSpec("sequential_stream",
                          params={"working_set": 64 * MB}),),
              write_fraction=0.4, branches_per_op=0.2, alu_per_op=2.0),
        Phase("frontier_small", 0.3,
              (KernelSpec("pointer_chase",
                          params={"working_set": 8 * MB}),),
              write_fraction=0.25, branch_model="random",
              branch_params={"n_sites": 60, "taken_prob": 0.5},
              branches_per_op=0.5, alu_per_op=1.5, intensity=0.6),
        Phase("frontier_large", 0.5,
              (KernelSpec("pointer_chase", weight=0.6,
                          params={"working_set": 40 * MB}),
               KernelSpec("gather_scatter", weight=0.4,
                          params={"index_bytes": 16 * MB,
                                  "data_bytes": 40 * MB})),
              write_fraction=0.3, branch_model="random",
              branch_params={"n_sites": 80, "taken_prob": 0.55},
              branches_per_op=0.5, alu_per_op=1.5, intensity=1.4),
    ))


def _btree():
    return Workload("btree", (
        Phase("bulk_load", 0.3,
              (KernelSpec("sequential_stream",
                          params={"working_set": 40 * MB}),),
              write_fraction=0.75, branch_model="loop",
              branch_params={"body": 10, "n_sites": 12},
              branches_per_op=0.3, alu_per_op=2.0),
        Phase("point_lookups", 0.45,
              (KernelSpec("zipfian",
                          params={"working_set": 40 * MB, "alpha": 1.1}),),
              write_fraction=0.05,
              branch_params={"n_sites": 70, "taken_prob": 0.68},
              branches_per_op=0.6, alu_per_op=2.2),
        Phase("range_scans", 0.25,
              (KernelSpec("sequential_stream", weight=0.7,
                          params={"working_set": 40 * MB}),
               KernelSpec("pointer_chase", weight=0.3,
                          params={"working_set": 12 * MB})),
              write_fraction=0.05, branch_model="loop",
              branch_params={"body": 14, "n_sites": 10},
              branches_per_op=0.3, alu_per_op=2.5),
    ))


def _openssl():
    return Workload("openssl", (
        Phase("key_setup", 0.15,
              (KernelSpec("random_uniform",
                          params={"working_set": 256 * KB}),),
              write_fraction=0.5,
              branch_params={"n_sites": 45, "taken_prob": 0.8},
              branches_per_op=0.5, alu_per_op=5.0, intensity=0.8),
        Phase("cipher_stream", 0.85,
              (KernelSpec("sequential_stream", weight=0.85,
                          params={"working_set": 24 * MB}),
               KernelSpec("hot_cold", weight=0.15,
                          params={"hot_bytes": 16 * KB,
                                  "cold_bytes": 128 * KB})),
              write_fraction=0.5, branch_model="loop",
              branch_params={"body": 40, "n_sites": 4},
              branches_per_op=0.08, alu_per_op=11.0, intensity=1.3),
    ))


def _lightgbm():
    return Workload("lightgbm", (
        Phase("load_dataset", 0.2,
              (KernelSpec("sequential_stream",
                          params={"working_set": 96 * MB}),),
              write_fraction=0.5, branches_per_op=0.2, alu_per_op=2.0),
        Phase("histogram", 0.45,
              (KernelSpec("random_uniform", weight=0.6,
                          params={"working_set": 24 * MB}),
               KernelSpec("sequential_stream", weight=0.4,
                          params={"working_set": 48 * MB})),
              write_fraction=0.45,
              branch_params={"n_sites": 35, "taken_prob": 0.82},
              branches_per_op=0.35, alu_per_op=3.5),
        Phase("find_splits", 0.35,
              (KernelSpec("hot_cold",
                          params={"hot_bytes": 1 * MB,
                                  "cold_bytes": 24 * MB}),),
              write_fraction=0.2, branch_model="random",
              branch_params={"n_sites": 90, "taken_prob": 0.5},
              branches_per_op=0.6, alu_per_op=4.0),
    ))


def _memcached():
    return Workload("memcached", (
        Phase("warm_cache", 0.3,
              (KernelSpec("random_uniform",
                          params={"working_set": 56 * MB}),),
              write_fraction=0.85,
              branch_params={"n_sites": 55, "taken_prob": 0.8},
              branches_per_op=0.4, alu_per_op=1.5),
        Phase("serve", 0.7,
              (KernelSpec("zipfian", weight=0.9,
                          params={"working_set": 56 * MB, "alpha": 1.2}),
               KernelSpec("random_uniform", weight=0.1,
                          params={"working_set": 56 * MB})),
              write_fraction=0.15,
              branch_params={"n_sites": 75, "taken_prob": 0.75},
              branches_per_op=0.55, alu_per_op=1.8, intensity=1.2),
    ))


def _blockchain():
    return Workload("blockchain", (
        Phase("verify_chain", 0.5,
              (KernelSpec("sequential_stream", weight=0.6,
                          params={"working_set": 32 * MB}),
               KernelSpec("hot_cold", weight=0.4,
                          params={"hot_bytes": 64 * KB,
                                  "cold_bytes": 1 * MB})),
              write_fraction=0.2, branch_model="loop",
              branch_params={"body": 30, "n_sites": 5},
              branches_per_op=0.12, alu_per_op=13.0),
        Phase("update_ledger", 0.5,
              (KernelSpec("pointer_chase", weight=0.5,
                          params={"working_set": 16 * MB}),
               KernelSpec("random_uniform", weight=0.5,
                          params={"working_set": 24 * MB})),
              write_fraction=0.5,
              branch_params={"n_sites": 65, "taken_prob": 0.78},
              branches_per_op=0.45, alu_per_op=2.5),
    ))


def build():
    """Build the SGXGauge suite model (8 workloads, non-SGX versions)."""
    return Suite(
        name="sgxgauge",
        workloads=(
            _pagerank(), _hashjoin(), _bfs(), _btree(), _openssl(),
            _lightgbm(), _memcached(), _blockchain(),
        ),
        description=(
            "Real-world benchmarks from different domains (non-SGX "
            "versions); full applications with strong phase behaviour."
        ),
    )
