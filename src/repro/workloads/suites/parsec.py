"""PARSEC suite model.

PARSEC [2] is a suite of full parallel applications chosen explicitly for
diversity and realistic multi-phase behaviour. Section IV-A of the paper
credits PARSEC's top-tier TrendScore to this: real applications move
through input loading, distinct computation stages, and output phases
whose counter profiles differ strongly.

Each workload model below is built from the application's published
characterization (working-set size, dominant access pattern, pipeline
structure) and has 2-4 genuinely different phases.
"""

from __future__ import annotations

from repro.workloads.base import KernelSpec, Phase, Suite, Workload

KB = 1024
MB = 1024 * 1024


def _phase(name, weight, kernels, write_fraction=0.3, branch_model="biased",
           branch_params=None, branches_per_op=0.4, alu_per_op=3.0,
           intensity=1.0):
    return Phase(
        name=name,
        weight=weight,
        kernels=tuple(kernels),
        write_fraction=write_fraction,
        branch_model=branch_model,
        branch_params=branch_params or {},
        branches_per_op=branches_per_op,
        alu_per_op=alu_per_op,
        intensity=intensity,
    )


def _blackscholes():
    """Option pricing: tiny working set, enormous FP intensity."""
    return Workload("blackscholes", (
        _phase("load_options", 0.15,
               [KernelSpec("sequential_stream",
                           params={"working_set": 2 * MB})],
               write_fraction=0.5, branches_per_op=0.1, alu_per_op=1.0),
        _phase("price", 0.85,
               [KernelSpec("sequential_stream", weight=0.9,
                           params={"working_set": 512 * KB}),
                KernelSpec("random_uniform", weight=0.1,
                           params={"working_set": 64 * KB})],
               write_fraction=0.15, branch_model="loop",
               branch_params={"body": 32, "n_sites": 6},
               branches_per_op=0.15, alu_per_op=14.0),
    ))


def _bodytrack():
    """Computer vision: image sweeps then particle filtering."""
    return Workload("bodytrack", (
        _phase("decode_frames", 0.2,
               [KernelSpec("sequential_stream",
                           params={"working_set": 32 * MB})],
               write_fraction=0.4, branches_per_op=0.2, alu_per_op=2.0),
        _phase("edge_maps", 0.4,
               [KernelSpec("stencil2d",
                           params={"rows": 1024, "cols": 1024})],
               write_fraction=0.3, branch_model="loop",
               branch_params={"body": 12, "n_sites": 10},
               alu_per_op=5.0),
        _phase("particle_filter", 0.4,
               [KernelSpec("random_uniform", weight=0.6,
                           params={"working_set": 8 * MB}),
                KernelSpec("hot_cold", weight=0.4,
                           params={"hot_bytes": 128 * KB,
                                   "cold_bytes": 16 * MB})],
               write_fraction=0.25, branch_params={"taken_prob": 0.75},
               branches_per_op=0.5, alu_per_op=4.0),
    ))


def _canneal():
    """Cache-hostile simulated annealing over a huge netlist."""
    return Workload("canneal", (
        _phase("build_netlist", 0.15,
               [KernelSpec("sequential_stream",
                           params={"working_set": 64 * MB})],
               write_fraction=0.6, branches_per_op=0.2, alu_per_op=1.5),
        _phase("anneal", 0.85,
               [KernelSpec("pointer_chase", weight=0.5,
                           params={"working_set": 48 * MB}),
                KernelSpec("random_uniform", weight=0.5,
                           params={"working_set": 64 * MB})],
               write_fraction=0.3, branch_model="random",
               branch_params={"taken_prob": 0.5, "n_sites": 64},
               branches_per_op=0.35, alu_per_op=2.0),
    ))


def _dedup():
    """Pipelined compression: chunk -> hash -> compress stages."""
    return Workload("dedup", (
        _phase("chunk", 0.3,
               [KernelSpec("sequential_stream",
                           params={"working_set": 96 * MB})],
               write_fraction=0.2, branches_per_op=0.25, alu_per_op=2.0),
        _phase("hash_lookup", 0.35,
               [KernelSpec("zipfian", weight=0.7,
                           params={"working_set": 24 * MB, "alpha": 0.9}),
                KernelSpec("random_uniform", weight=0.3,
                           params={"working_set": 24 * MB})],
               write_fraction=0.45, branch_params={"taken_prob": 0.8},
               branches_per_op=0.5, alu_per_op=3.0),
        _phase("compress", 0.35,
               [KernelSpec("sequential_stream", weight=0.8,
                           params={"working_set": 4 * MB}),
                KernelSpec("hot_cold", weight=0.2,
                           params={"hot_bytes": 64 * KB,
                                   "cold_bytes": 4 * MB})],
               write_fraction=0.5, branch_model="loop",
               branch_params={"body": 8, "n_sites": 20},
               alu_per_op=6.0),
    ))


def _facesim():
    """Physics simulation of a face mesh: large stencil sweeps."""
    return Workload("facesim", (
        _phase("assemble", 0.3,
               [KernelSpec("gather_scatter",
                           params={"index_bytes": 16 * MB,
                                   "data_bytes": 64 * MB})],
               write_fraction=0.4, branches_per_op=0.3, alu_per_op=4.0),
        _phase("solve", 0.7,
               [KernelSpec("stencil2d", weight=0.8,
                           params={"rows": 4096, "cols": 2048}),
                KernelSpec("sequential_stream", weight=0.2,
                           params={"working_set": 32 * MB})],
               write_fraction=0.35, branch_model="loop",
               branch_params={"body": 24, "n_sites": 8},
               branches_per_op=0.2, alu_per_op=8.0),
    ))


def _ferret():
    """Content-based similarity search: a four-stage pipeline."""
    return Workload("ferret", (
        _phase("segment", 0.2,
               [KernelSpec("stencil2d", params={"rows": 512, "cols": 512})],
               write_fraction=0.3, alu_per_op=5.0),
        _phase("extract", 0.25,
               [KernelSpec("sequential_stream",
                           params={"working_set": 8 * MB})],
               write_fraction=0.4, alu_per_op=6.0),
        _phase("index_query", 0.35,
               [KernelSpec("zipfian", weight=0.5,
                           params={"working_set": 32 * MB, "alpha": 1.2}),
                KernelSpec("pointer_chase", weight=0.5,
                           params={"working_set": 16 * MB})],
               write_fraction=0.1, branch_params={"taken_prob": 0.7},
               branches_per_op=0.55, alu_per_op=2.5),
        _phase("rank", 0.2,
               [KernelSpec("random_uniform",
                           params={"working_set": 2 * MB})],
               write_fraction=0.2, branch_model="random",
               branch_params={"n_sites": 32}, alu_per_op=3.5),
    ))


def _fluidanimate():
    """SPH fluid simulation: grid phases of alternating intensity."""
    return Workload("fluidanimate", (
        _phase("rebuild_grid", 0.3,
               [KernelSpec("random_uniform", weight=0.6,
                           params={"working_set": 24 * MB}),
                KernelSpec("sequential_stream", weight=0.4,
                           params={"working_set": 24 * MB})],
               write_fraction=0.55, branches_per_op=0.3, alu_per_op=2.0),
        _phase("compute_forces", 0.5,
               [KernelSpec("stencil2d",
                           params={"rows": 2048, "cols": 1536})],
               write_fraction=0.3, branch_model="loop",
               branch_params={"body": 27, "n_sites": 6},
               alu_per_op=9.0),
        _phase("advance", 0.2,
               [KernelSpec("sequential_stream",
                           params={"working_set": 24 * MB})],
               write_fraction=0.5, branches_per_op=0.1, alu_per_op=3.0),
    ))


def _freqmine():
    """FP-growth frequent itemset mining: tree building and traversal."""
    return Workload("freqmine", (
        _phase("build_fptree", 0.4,
               [KernelSpec("hot_cold", weight=0.5,
                           params={"hot_bytes": 256 * KB,
                                   "cold_bytes": 32 * MB}),
                KernelSpec("random_uniform", weight=0.5,
                           params={"working_set": 32 * MB})],
               write_fraction=0.6, branch_params={"taken_prob": 0.82},
               branches_per_op=0.5, alu_per_op=2.5),
        _phase("mine", 0.6,
               [KernelSpec("pointer_chase",
                           params={"working_set": 24 * MB})],
               write_fraction=0.15, branch_params={"taken_prob": 0.72},
               branches_per_op=0.6, alu_per_op=2.0),
    ))


def _raytrace():
    """Ray tracing: BVH traversal with incoherent rays."""
    return Workload("raytrace", (
        _phase("build_bvh", 0.2,
               [KernelSpec("sequential_stream", weight=0.5,
                           params={"working_set": 48 * MB}),
                KernelSpec("random_uniform", weight=0.5,
                           params={"working_set": 48 * MB})],
               write_fraction=0.5, branches_per_op=0.35, alu_per_op=3.0),
        _phase("trace", 0.8,
               [KernelSpec("pointer_chase", weight=0.7,
                           params={"working_set": 40 * MB}),
                KernelSpec("hot_cold", weight=0.3,
                           params={"hot_bytes": 512 * KB,
                                   "cold_bytes": 40 * MB})],
               write_fraction=0.05, branch_model="random",
               branch_params={"taken_prob": 0.45, "n_sites": 96},
               branches_per_op=0.5, alu_per_op=6.0),
    ))


def _streamcluster():
    """Online clustering: long streaming scans with periodic re-centering."""
    return Workload("streamcluster", (
        _phase("stream_points", 0.6,
               [KernelSpec("sequential_stream",
                           params={"working_set": 128 * MB})],
               write_fraction=0.1, branch_model="loop",
               branch_params={"body": 40, "n_sites": 4},
               branches_per_op=0.15, alu_per_op=7.0),
        _phase("recluster", 0.4,
               [KernelSpec("random_uniform", weight=0.7,
                           params={"working_set": 16 * MB}),
                KernelSpec("sequential_stream", weight=0.3,
                           params={"working_set": 16 * MB})],
               write_fraction=0.4, branch_params={"taken_prob": 0.78},
               branches_per_op=0.45, alu_per_op=4.0, intensity=1.3),
    ))


def _swaptions():
    """Monte-Carlo swaption pricing: pure compute kernel, tiny data."""
    return Workload("swaptions", (
        _phase("simulate", 1.0,
               [KernelSpec("sequential_stream", weight=0.7,
                           params={"working_set": 256 * KB}),
                KernelSpec("random_uniform", weight=0.3,
                           params={"working_set": 64 * KB})],
               write_fraction=0.25, branch_model="loop",
               branch_params={"body": 20, "n_sites": 8},
               branches_per_op=0.2, alu_per_op=16.0),
    ))


def _vips():
    """Image transformation pipeline: tiled sweeps, stage changes."""
    return Workload("vips", (
        _phase("load_tiles", 0.25,
               [KernelSpec("sequential_stream",
                           params={"working_set": 64 * MB})],
               write_fraction=0.45, branches_per_op=0.2, alu_per_op=2.0),
        _phase("affine_convolve", 0.5,
               [KernelSpec("stencil2d",
                           params={"rows": 3072, "cols": 2048})],
               write_fraction=0.35, branch_model="loop",
               branch_params={"body": 16, "n_sites": 12},
               alu_per_op=7.0),
        _phase("write_out", 0.25,
               [KernelSpec("sequential_stream",
                           params={"working_set": 64 * MB})],
               write_fraction=0.8, branches_per_op=0.1, alu_per_op=1.5),
    ))


def _x264():
    """Video encoding: motion estimation over a sliding window."""
    return Workload("x264", (
        _phase("motion_estimate", 0.5,
               [KernelSpec("hot_cold", weight=0.6,
                           params={"hot_bytes": 2 * MB,
                                   "cold_bytes": 48 * MB}),
                KernelSpec("sequential_stream", weight=0.4,
                           params={"working_set": 16 * MB})],
               write_fraction=0.2, branch_params={"taken_prob": 0.7},
               branches_per_op=0.55, alu_per_op=5.0),
        _phase("transform_quant", 0.3,
               [KernelSpec("sequential_stream",
                           params={"working_set": 4 * MB})],
               write_fraction=0.4, branch_model="loop",
               branch_params={"body": 15, "n_sites": 16},
               alu_per_op=9.0),
        _phase("entropy_encode", 0.2,
               [KernelSpec("hot_cold",
                           params={"hot_bytes": 64 * KB,
                                   "cold_bytes": 8 * MB})],
               write_fraction=0.5, branch_model="random",
               branch_params={"taken_prob": 0.55, "n_sites": 48},
               branches_per_op=0.7, alu_per_op=2.5),
    ))


def build():
    """Build the PARSEC suite model (13 workloads)."""
    return Suite(
        name="parsec",
        workloads=(
            _blackscholes(), _bodytrack(), _canneal(), _dedup(),
            _facesim(), _ferret(), _fluidanimate(), _freqmine(),
            _raytrace(), _streamcluster(), _swaptions(), _vips(), _x264(),
        ),
        description=(
            "Parallel workloads evaluating multi-threading capabilities "
            "of multiprocessor systems; diverse full applications with "
            "strong phase behaviour."
        ),
    )
