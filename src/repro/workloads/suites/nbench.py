"""Nbench suite model.

Nbench [7] (the BYTE benchmark) is a set of ten small single-threaded
kernels testing integer, floating-point, and memory operation speed.
Every kernel has a small, largely cache-resident working set and a flat
execution profile -- they are exactly the "kernels susceptible to
compiler tuning" the paper contrasts with real applications. The model
therefore gives each workload a single phase over a small working set;
the kernels differ in instruction mix but overlap heavily in memory
behaviour, yielding the moderate clustering Fig. 4 shows.
"""

from __future__ import annotations

from repro.workloads.base import KernelSpec, Phase, Suite, Workload

KB = 1024
MB = 1024 * 1024


def _kernel_workload(name, kernels, **kwargs):
    return Workload(name, (Phase(name=f"{name}_kernel", weight=1.0,
                                 kernels=tuple(kernels), **kwargs),))


def build():
    """Build the Nbench suite model (10 kernels)."""
    workloads = (
        _kernel_workload(
            "numeric_sort",
            [KernelSpec("sequential_stream", weight=0.6,
                        params={"working_set": 192 * KB}),
             KernelSpec("random_uniform", weight=0.4,
                        params={"working_set": 192 * KB})],
            write_fraction=0.45, branch_model="biased",
            branch_params={"n_sites": 24, "taken_prob": 0.6},
            branches_per_op=0.5, alu_per_op=2.5,
        ),
        _kernel_workload(
            "string_sort",
            [KernelSpec("sequential_stream", weight=0.5,
                        params={"working_set": 320 * KB}),
             KernelSpec("random_uniform", weight=0.5,
                        params={"working_set": 320 * KB})],
            write_fraction=0.5, branch_model="biased",
            branch_params={"n_sites": 32, "taken_prob": 0.65},
            branches_per_op=0.6, alu_per_op=2.0,
        ),
        _kernel_workload(
            "bitfield",
            [KernelSpec("sequential_stream",
                        params={"working_set": 128 * KB})],
            write_fraction=0.5, branch_model="loop",
            branch_params={"body": 12, "n_sites": 6},
            branches_per_op=0.3, alu_per_op=4.0,
        ),
        _kernel_workload(
            "fp_emulation",
            [KernelSpec("hot_cold", params={"hot_bytes": 32 * KB,
                                            "cold_bytes": 256 * KB})],
            write_fraction=0.3, branch_model="biased",
            branch_params={"n_sites": 60, "taken_prob": 0.7},
            branches_per_op=0.7, alu_per_op=6.0,
        ),
        _kernel_workload(
            "fourier",
            [KernelSpec("sequential_stream",
                        params={"working_set": 64 * KB})],
            write_fraction=0.25, branch_model="loop",
            branch_params={"body": 20, "n_sites": 4},
            branches_per_op=0.15, alu_per_op=12.0,
        ),
        _kernel_workload(
            "assignment",
            [KernelSpec("random_uniform", weight=0.7,
                        params={"working_set": 448 * KB}),
             KernelSpec("sequential_stream", weight=0.3,
                        params={"working_set": 448 * KB})],
            write_fraction=0.4, branch_model="biased",
            branch_params={"n_sites": 28, "taken_prob": 0.75},
            branches_per_op=0.45, alu_per_op=2.5,
        ),
        _kernel_workload(
            "idea",
            [KernelSpec("sequential_stream",
                        params={"working_set": 96 * KB})],
            write_fraction=0.5, branch_model="loop",
            branch_params={"body": 16, "n_sites": 5},
            branches_per_op=0.2, alu_per_op=7.0,
        ),
        _kernel_workload(
            "huffman",
            [KernelSpec("hot_cold", params={"hot_bytes": 16 * KB,
                                            "cold_bytes": 512 * KB})],
            write_fraction=0.45, branch_model="random",
            branch_params={"n_sites": 40, "taken_prob": 0.55},
            branches_per_op=0.8, alu_per_op=2.0,
        ),
        _kernel_workload(
            "neural_net",
            [KernelSpec("sequential_stream", weight=0.7,
                        params={"working_set": 256 * KB}),
             KernelSpec("stencil2d", weight=0.3,
                        params={"rows": 128, "cols": 128})],
            write_fraction=0.35, branch_model="loop",
            branch_params={"body": 24, "n_sites": 6},
            branches_per_op=0.18, alu_per_op=9.0,
        ),
        _kernel_workload(
            "lu_decomposition",
            [KernelSpec("stencil2d", weight=0.6,
                        params={"rows": 256, "cols": 256}),
             KernelSpec("sequential_stream", weight=0.4,
                        params={"working_set": 512 * KB})],
            write_fraction=0.4, branch_model="loop",
            branch_params={"body": 18, "n_sites": 8},
            branches_per_op=0.2, alu_per_op=8.0,
        ),
    )
    return Suite(
        name="nbench",
        workloads=workloads,
        description=(
            "Micro-benchmarks testing the speed of integer, floating-"
            "point, and memory operations; small cache-resident kernels."
        ),
    )
