"""Suite model definitions (one module per Table III suite)."""

from repro.workloads.suites.registry import (
    available_suites,
    load_suite,
    load_all_suites,
)

__all__ = ["available_suites", "load_suite", "load_all_suites"]
