"""Ligra suite model.

Ligra [20] is a lightweight graph-processing *framework*: every workload
is a different algorithm (BFS, PageRank, ...) running on the same two
shared components -- a graph loader/decoder and the edge-map/vertex-map
engine. The paper's Section IV-A attributes Ligra's worst-in-class
ClusterScore to exactly this shared skeleton.

The model encodes that: every workload has the *same* loader phase and
an algorithm phase drawn from the same kernel family (gather/scatter over
the edge arrays plus pointer chasing through the vertex structure), with
only small per-algorithm parameter variations. The counters therefore
cluster tightly, as the real suite's do.
"""

from __future__ import annotations

from repro.workloads.base import KernelSpec, Phase, Suite, Workload

_GRAPH_BYTES = 96 * 1024 * 1024       # encoded graph (shared loader input)
_VERTEX_BYTES = 24 * 1024 * 1024      # vertex data touched by traversals

#: Per-algorithm tweaks: (chase_share, taken_prob, write_fraction,
#: working-set scale). The algorithms fall into two tight families --
#: frontier *traversals* (BFS-like, dominated by pointer chasing through
#: the vertex structure) and whole-graph *sweeps* (PageRank-like,
#: dominated by edge-array gather/scatter) -- with only tiny intra-family
#: spreads, because they share the loader and the edge-map engine. The
#: two-blob structure is what drives Ligra's worst-in-class ClusterScore.
_ALGORITHMS = {
    # traversal family
    "bfs": (0.78, 0.87, 0.10, 1.00),
    "components": (0.80, 0.88, 0.11, 1.02),
    "radii": (0.77, 0.87, 0.10, 0.98),
    "bellman_ford": (0.79, 0.88, 0.12, 1.01),
    # sweep family
    "pagerank": (0.22, 0.94, 0.24, 1.62),
    "mis": (0.20, 0.93, 0.23, 1.58),
    "kcore": (0.23, 0.94, 0.25, 1.60),
    "triangle": (0.21, 0.94, 0.22, 1.64),
}


def _loader_phase():
    """The shared graph load/decode phase (identical for every workload)."""
    return Phase(
        name="load_graph",
        weight=0.3,
        kernels=(
            KernelSpec("sequential_stream", weight=0.8,
                       params={"working_set": _GRAPH_BYTES}),
            KernelSpec("random_uniform", weight=0.2,
                       params={"working_set": _VERTEX_BYTES}),
        ),
        write_fraction=0.35,
        branch_model="loop",
        branch_params={"body": 16, "n_sites": 12},
        branches_per_op=0.25,
        alu_per_op=2.0,
    )


def _algorithm_phase(name, chase_share, taken_prob, write_fraction, scale):
    ws = int(_VERTEX_BYTES * scale)
    return Phase(
        name=f"{name}_process",
        weight=0.7,
        kernels=(
            KernelSpec("pointer_chase", weight=chase_share,
                       params={"working_set": ws}),
            KernelSpec("gather_scatter", weight=1.0 - chase_share,
                       params={"index_bytes": _GRAPH_BYTES // 4,
                               "data_bytes": ws}),
        ),
        write_fraction=write_fraction,
        branch_model="biased",
        branch_params={"n_sites": 48, "taken_prob": taken_prob},
        branches_per_op=0.45,
        alu_per_op=2.5,
    )


def build():
    """Build the Ligra suite model (8 workloads)."""
    workloads = []
    for name, (chase, taken, wf, scale) in _ALGORITHMS.items():
        workloads.append(
            Workload(
                name=name,
                phases=(
                    _loader_phase(),
                    _algorithm_phase(name, chase, taken, wf, scale),
                ),
            )
        )
    return Suite(
        name="ligra",
        workloads=tuple(workloads),
        description=(
            "A lightweight graph processing framework; all workloads "
            "share the loader and edge-map engine."
        ),
    )
