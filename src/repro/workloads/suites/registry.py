"""Suite registry: one entry per Table III suite."""

from __future__ import annotations

from repro.workloads.suites import (
    ligra,
    lmbench,
    nbench,
    parsec,
    sgxgauge,
    spec17,
)

_BUILDERS = {
    "parsec": parsec.build,
    "spec17": spec17.build,
    "ligra": ligra.build,
    "lmbench": lmbench.build,
    "nbench": nbench.build,
    "sgxgauge": sgxgauge.build,
}


def available_suites():
    """Names of every modelled suite, in Table III order."""
    return list(_BUILDERS)


def load_suite(name):
    """Build one suite model by name (case-insensitive).

    Returns
    -------
    repro.workloads.base.Suite
    """
    key = name.lower().replace("'", "").replace("-", "")
    if key == "spec2017":
        key = "spec17"
    if key not in _BUILDERS:
        raise KeyError(
            f"unknown suite {name!r}; available: {available_suites()}"
        )
    return _BUILDERS[key]()


def load_all_suites():
    """Build every suite model. Returns a name -> Suite dict."""
    return {name: builder() for name, builder in _BUILDERS.items()}
