"""SPEC CPU 2017 suite model.

SPEC'17 [1] has 43 benchmarks across four groups (intrate, intspeed,
fprate, fpspeed); rate and speed variants of the same program share code
but run different input scales. The model captures:

* per-program behavioural *families* (mcf's pointer chasing, lbm's
  streaming, exchange2's tiny-footprint branchy recursion, ...), derived
  from the published SPEC characterizations [15, 16];
* speed (``_s``) variants as the same family with working sets scaled up
  (typically ~3-4x, more TLB pressure);
* mild two-phase structure (setup + main computation) -- SPEC programs do
  have phases, but flatter ones than PARSEC's pipelined applications,
  which is why the paper's Fig. 3a ranks SPEC'17 below PARSEC/SGXGauge on
  TrendScore while its 43 members spread the parameter space well
  (best SpreadScore, strong TLB-focused coverage in Fig. 3c).
"""

from __future__ import annotations

from repro.workloads.base import KernelSpec, Phase, Suite, Workload

KB = 1024
MB = 1024 * 1024

#: family -> (main kernels factory, branch model, branch params,
#:            branches_per_op, alu_per_op, write_fraction)
#: Working sets inside the factories take a scale factor (1 for rate,
#: larger for speed variants).


def _k(kernel, weight, **params):
    return KernelSpec(kernel, weight=weight, params=params)


_FAMILIES = {
    # --- integer ---------------------------------------------------------
    "perlbench": dict(
        kernels=lambda s: (
            _k("hot_cold", 0.7, hot_bytes=512 * KB,
               cold_bytes=int(24 * MB * s)),
            _k("random_uniform", 0.3, working_set=int(16 * MB * s)),
        ),
        branch=("biased", {"n_sites": 220, "taken_prob": 0.76}),
        bpo=0.65, alu=2.5, wf=0.35, intensity=1.0,
    ),
    "gcc": dict(
        kernels=lambda s: (
            _k("pointer_chase", 0.45, working_set=int(20 * MB * s)),
            _k("random_uniform", 0.35, working_set=int(28 * MB * s)),
            _k("sequential_stream", 0.20, working_set=int(8 * MB * s)),
        ),
        branch=("random", {"n_sites": 300, "taken_prob": 0.6}),
        bpo=0.6, alu=2.0, wf=0.4, intensity=1.1,
    ),
    "mcf": dict(
        kernels=lambda s: (
            _k("pointer_chase", 0.8, working_set=int(56 * MB * s)),
            _k("random_uniform", 0.2, working_set=int(64 * MB * s)),
        ),
        branch=("biased", {"n_sites": 64, "taken_prob": 0.7}),
        bpo=0.4, alu=1.5, wf=0.25, intensity=1.35,
    ),
    "omnetpp": dict(
        kernels=lambda s: (
            _k("pointer_chase", 0.6, working_set=int(40 * MB * s)),
            _k("zipfian", 0.4, working_set=int(32 * MB * s), alpha=1.0),
        ),
        branch=("biased", {"n_sites": 150, "taken_prob": 0.72}),
        bpo=0.55, alu=2.0, wf=0.35, intensity=1.2,
    ),
    "xalancbmk": dict(
        kernels=lambda s: (
            _k("pointer_chase", 0.5, working_set=int(30 * MB * s)),
            _k("random_uniform", 0.5, working_set=int(48 * MB * s)),
        ),
        branch=("biased", {"n_sites": 180, "taken_prob": 0.8}),
        bpo=0.6, alu=2.2, wf=0.3, intensity=1.15,
    ),
    "x264": dict(
        kernels=lambda s: (
            _k("hot_cold", 0.5, hot_bytes=2 * MB,
               cold_bytes=int(32 * MB * s)),
            _k("sequential_stream", 0.5, working_set=int(12 * MB * s)),
        ),
        branch=("biased", {"n_sites": 90, "taken_prob": 0.7}),
        bpo=0.5, alu=5.0, wf=0.25, intensity=0.9,
    ),
    "deepsjeng": dict(
        kernels=lambda s: (
            _k("random_uniform", 0.7, working_set=int(6 * MB * s)),
            _k("hot_cold", 0.3, hot_bytes=256 * KB,
               cold_bytes=int(4 * MB * s)),
        ),
        branch=("random", {"n_sites": 128, "taken_prob": 0.5}),
        bpo=0.7, alu=3.0, wf=0.3, intensity=0.8,
    ),
    "leela": dict(
        kernels=lambda s: (
            _k("pointer_chase", 0.55, working_set=int(3 * MB * s)),
            _k("random_uniform", 0.45, working_set=int(2 * MB * s)),
        ),
        branch=("random", {"n_sites": 96, "taken_prob": 0.55}),
        bpo=0.65, alu=3.5, wf=0.25, intensity=0.85,
    ),
    "exchange2": dict(
        kernels=lambda s: (
            _k("sequential_stream", 0.6, working_set=int(96 * KB * s)),
            _k("random_uniform", 0.4, working_set=int(64 * KB * s)),
        ),
        branch=("loop", {"body": 9, "n_sites": 40}),
        bpo=0.8, alu=4.0, wf=0.3, intensity=0.6,
    ),
    "xz": dict(
        kernels=lambda s: (
            _k("sequential_stream", 0.5, working_set=int(64 * MB * s)),
            _k("random_uniform", 0.3, working_set=int(48 * MB * s)),
            _k("hot_cold", 0.2, hot_bytes=1 * MB,
               cold_bytes=int(32 * MB * s)),
        ),
        branch=("biased", {"n_sites": 110, "taken_prob": 0.68}),
        bpo=0.5, alu=3.0, wf=0.4, intensity=1.05,
    ),
    # --- floating point --------------------------------------------------
    "bwaves": dict(
        kernels=lambda s: (
            _k("stencil2d", 0.8, rows=int(2048 * s), cols=2048),
            _k("sequential_stream", 0.2, working_set=int(48 * MB * s)),
        ),
        branch=("loop", {"body": 30, "n_sites": 6}),
        bpo=0.12, alu=10.0, wf=0.3, intensity=1.3,
    ),
    "cactuBSSN": dict(
        kernels=lambda s: (
            _k("stencil2d", 0.9, rows=int(3072 * s), cols=3072),
            _k("random_uniform", 0.1, working_set=int(16 * MB * s)),
        ),
        branch=("loop", {"body": 25, "n_sites": 10}),
        bpo=0.15, alu=12.0, wf=0.35, intensity=1.25,
    ),
    "namd": dict(
        kernels=lambda s: (
            _k("gather_scatter", 0.7, index_bytes=int(8 * MB * s),
               data_bytes=int(24 * MB * s)),
            _k("sequential_stream", 0.3, working_set=int(8 * MB * s)),
        ),
        branch=("loop", {"body": 18, "n_sites": 8}),
        bpo=0.2, alu=11.0, wf=0.3, intensity=0.95,
    ),
    "parest": dict(
        kernels=lambda s: (
            _k("gather_scatter", 0.6, index_bytes=int(12 * MB * s),
               data_bytes=int(36 * MB * s)),
            _k("stencil2d", 0.4, rows=int(1536 * s), cols=1536),
        ),
        branch=("loop", {"body": 22, "n_sites": 12}),
        bpo=0.18, alu=8.0, wf=0.35, intensity=1.1,
    ),
    "povray": dict(
        kernels=lambda s: (
            _k("hot_cold", 0.6, hot_bytes=384 * KB,
               cold_bytes=int(2 * MB * s)),
            _k("pointer_chase", 0.4, working_set=int(1 * MB * s)),
        ),
        branch=("biased", {"n_sites": 130, "taken_prob": 0.65}),
        bpo=0.55, alu=7.0, wf=0.2, intensity=0.7,
    ),
    "lbm": dict(
        kernels=lambda s: (
            _k("sequential_stream", 0.95, working_set=int(96 * MB * s)),
            _k("random_uniform", 0.05, working_set=int(8 * MB * s)),
        ),
        branch=("loop", {"body": 50, "n_sites": 3}),
        bpo=0.05, alu=9.0, wf=0.5, intensity=1.4,
    ),
    "wrf": dict(
        kernels=lambda s: (
            _k("stencil2d", 0.6, rows=int(1024 * s), cols=2048),
            _k("sequential_stream", 0.4, working_set=int(40 * MB * s)),
        ),
        branch=("loop", {"body": 20, "n_sites": 14}),
        bpo=0.2, alu=8.5, wf=0.4, intensity=1.05,
    ),
    "blender": dict(
        kernels=lambda s: (
            _k("random_uniform", 0.5, working_set=int(20 * MB * s)),
            _k("hot_cold", 0.5, hot_bytes=1 * MB,
               cold_bytes=int(24 * MB * s)),
        ),
        branch=("biased", {"n_sites": 160, "taken_prob": 0.73}),
        bpo=0.45, alu=6.0, wf=0.3, intensity=0.9,
    ),
    "cam4": dict(
        kernels=lambda s: (
            _k("stencil2d", 0.5, rows=int(1280 * s), cols=1024),
            _k("sequential_stream", 0.5, working_set=int(32 * MB * s)),
        ),
        branch=("loop", {"body": 16, "n_sites": 18}),
        bpo=0.25, alu=7.5, wf=0.4, intensity=1.0,
    ),
    "pop2": dict(
        kernels=lambda s: (
            _k("stencil2d", 0.55, rows=int(1600 * s), cols=1200),
            _k("gather_scatter", 0.45, index_bytes=int(6 * MB * s),
               data_bytes=int(28 * MB * s)),
        ),
        branch=("loop", {"body": 19, "n_sites": 15}),
        bpo=0.22, alu=8.0, wf=0.38, intensity=1.1,
    ),
    "imagick": dict(
        kernels=lambda s: (
            _k("sequential_stream", 0.8, working_set=int(10 * MB * s)),
            _k("stencil2d", 0.2, rows=int(768 * s), cols=1024),
        ),
        branch=("loop", {"body": 28, "n_sites": 7}),
        bpo=0.15, alu=10.0, wf=0.3, intensity=0.75,
    ),
    "nab": dict(
        kernels=lambda s: (
            _k("random_uniform", 0.6, working_set=int(5 * MB * s)),
            _k("sequential_stream", 0.4, working_set=int(4 * MB * s)),
        ),
        branch=("loop", {"body": 14, "n_sites": 11}),
        bpo=0.25, alu=9.5, wf=0.3, intensity=0.8,
    ),
    "fotonik3d": dict(
        kernels=lambda s: (
            _k("stencil2d", 0.85, rows=int(2560 * s), cols=2048),
            _k("sequential_stream", 0.15, working_set=int(56 * MB * s)),
        ),
        branch=("loop", {"body": 35, "n_sites": 5}),
        bpo=0.1, alu=9.0, wf=0.45, intensity=1.3,
    ),
    "roms": dict(
        kernels=lambda s: (
            _k("sequential_stream", 0.55, working_set=int(72 * MB * s)),
            _k("stencil2d", 0.45, rows=int(1792 * s), cols=1536),
        ),
        branch=("loop", {"body": 26, "n_sites": 9}),
        bpo=0.14, alu=8.5, wf=0.42, intensity=1.2,
    ),
}

#: The 43 SPEC CPU2017 benchmarks: (number, family, variant, scale).
#: Speed variants run much larger inputs (bigger working sets).
_BENCHMARKS = [
    # intrate (10)
    ("500", "perlbench", "r", 1.0), ("502", "gcc", "r", 1.0),
    ("505", "mcf", "r", 1.0), ("520", "omnetpp", "r", 1.0),
    ("523", "xalancbmk", "r", 1.0), ("525", "x264", "r", 1.0),
    ("531", "deepsjeng", "r", 1.0), ("541", "leela", "r", 1.0),
    ("548", "exchange2", "r", 1.0), ("557", "xz", "r", 1.0),
    # intspeed (10)
    ("600", "perlbench", "s", 2.5), ("602", "gcc", "s", 3.0),
    ("605", "mcf", "s", 3.5), ("620", "omnetpp", "s", 2.0),
    ("623", "xalancbmk", "s", 2.5), ("625", "x264", "s", 3.0),
    ("631", "deepsjeng", "s", 4.0), ("641", "leela", "s", 2.0),
    ("648", "exchange2", "s", 1.5), ("657", "xz", "s", 4.0),
    # fprate (13)
    ("503", "bwaves", "r", 1.0), ("507", "cactuBSSN", "r", 1.0),
    ("508", "namd", "r", 1.0), ("510", "parest", "r", 1.0),
    ("511", "povray", "r", 1.0), ("519", "lbm", "r", 1.0),
    ("521", "wrf", "r", 1.0), ("526", "blender", "r", 1.0),
    ("527", "cam4", "r", 1.0), ("538", "imagick", "r", 1.0),
    ("544", "nab", "r", 1.0), ("549", "fotonik3d", "r", 1.0),
    ("554", "roms", "r", 1.0),
    # fpspeed (10)
    ("603", "bwaves", "s", 3.0), ("607", "cactuBSSN", "s", 2.5),
    ("619", "lbm", "s", 4.0), ("621", "wrf", "s", 2.0),
    ("627", "cam4", "s", 2.5), ("628", "pop2", "s", 1.0),
    ("638", "imagick", "s", 3.5), ("644", "nab", "s", 2.0),
    ("649", "fotonik3d", "s", 2.5), ("654", "roms", "s", 3.0),
]


def _twist_kernels(kernels):
    """Rebalance a kernel mix for the speed variant: the reference inputs
    shift the hot-loop balance (e.g. gcc_s spends proportionally more
    time in its pointer-heavy passes than gcc_r), so _r/_s pairs are
    related but not twins."""
    specs = list(kernels)
    if len(specs) == 1:
        return tuple(specs)
    twisted = []
    for i, spec in enumerate(specs):
        delta = 0.18 if i == 0 else -0.18 / (len(specs) - 1)
        twisted.append(
            KernelSpec(spec.kernel, weight=max(spec.weight + delta, 0.05),
                       params=dict(spec.params))
        )
    return tuple(twisted)


def _build_workload(number, family, variant, scale):
    spec = _FAMILIES[family]
    branch_model, branch_params = spec["branch"]
    kernels = spec["kernels"](scale)
    wf, bpo, alu = spec["wf"], spec["bpo"], spec["alu"]
    setup_weight = 0.15
    if variant == "s":
        # Speed runs use much larger reference inputs: setup is a smaller
        # share of the run, kernel balance shifts, stores and ILP change.
        kernels = _twist_kernels(kernels)
        setup_weight = 0.08
        wf = min(wf + 0.12, 1.0)
        bpo = bpo * 0.75
        alu = alu * 1.35
        branch_params = dict(branch_params)
        if "taken_prob" in branch_params:
            branch_params["taken_prob"] = min(
                branch_params["taken_prob"] + 0.08, 0.98
            )
        if "body" in branch_params:
            branch_params["body"] = branch_params["body"] * 2

    setup = Phase(
        name="setup",
        weight=setup_weight,
        kernels=(
            KernelSpec("sequential_stream",
                       params={"working_set": int(16 * MB * scale)}),
        ),
        write_fraction=0.55,
        branch_model="biased",
        branch_params={"n_sites": 30, "taken_prob": 0.85},
        branches_per_op=0.25,
        alu_per_op=2.0,
    )
    intensity = spec.get("intensity", 1.0)
    if variant == "s":
        intensity *= 1.1
    main = Phase(
        name="main",
        weight=1.0 - setup_weight,
        kernels=kernels,
        write_fraction=wf,
        branch_model=branch_model,
        branch_params=dict(branch_params),
        branches_per_op=bpo,
        alu_per_op=alu,
        intensity=intensity,
    )
    return Workload(name=f"{number}.{family}_{variant}", phases=(setup, main))


def build():
    """Build the SPEC CPU2017 suite model (43 workloads)."""
    return Suite(
        name="spec17",
        workloads=tuple(_build_workload(*b) for b in _BENCHMARKS),
        description=(
            "A benchmark suite to stress the CPU and the memory "
            "subsystem; 43 benchmarks over four groups."
        ),
    )
