"""Synthetic workload substrate.

The paper evaluates six real benchmark suites (Table III). Those binaries
are not available here, so this package models each suite as a set of
*phase-structured synthetic workloads*: every workload is a sequence of
phases, every phase a weighted mix of access-pattern kernels plus branch
and compute behaviour, and every interval of execution materializes as a
batch of memory/branch events consumable by the simulator.

What matters for the Perspector metrics is the statistical structure of
the resulting counters, and the models encode each suite's published
character (see DESIGN.md section 2 and the module docstrings under
:mod:`repro.workloads.suites`):

* Ligra workloads share a code skeleton -> clustered counters;
* PARSEC and SGXGauge are diverse real applications with strong phases;
* LMbench members each stress one extreme corner of the machine;
* Nbench is a set of small cache-resident kernels;
* SPEC'17 is large, diverse and comparatively well spread.
"""

from repro.workloads.base import KernelSpec, Phase, Workload, Suite
from repro.workloads.trace import TraceInterval
from repro.workloads.suites.registry import (
    available_suites,
    load_suite,
    load_all_suites,
)
from repro.workloads.custom import (
    suite_from_json,
    suite_from_spec,
    suite_to_spec,
)
from repro.workloads.synthetic import (
    make_grouped_suite,
    make_synthetic_suite,
)

__all__ = [
    "KernelSpec",
    "Phase",
    "Workload",
    "Suite",
    "TraceInterval",
    "available_suites",
    "load_suite",
    "load_all_suites",
    "suite_from_json",
    "suite_from_spec",
    "suite_to_spec",
    "make_grouped_suite",
    "make_synthetic_suite",
]
