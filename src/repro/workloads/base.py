"""Workload, phase, and suite abstractions.

A :class:`Workload` is a sequence of :class:`Phase` objects. Each phase
describes, declaratively, how the program behaves during that fraction of
its execution:

* a weighted mix of address-stream kernels (:class:`KernelSpec`);
* a store fraction;
* branch behaviour (model, density, bias);
* compute intensity (ALU instructions per memory operation).

``Workload.intervals`` materializes the phases into
:class:`repro.workloads.trace.TraceInterval` batches: intervals are
assigned to phases contiguously in proportion to phase weights, so a
two-phase workload genuinely *switches behaviour* partway through its
run -- which is exactly the structure the TrendScore (Section III-B)
rewards and aggregate-only prior work ignores (Section II, drawback 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workloads.generators import generate_addresses, generate_branches
from repro.workloads.trace import TraceInterval

#: Size of the private address region given to each kernel of each phase,
#: so different kernels (and workloads) do not share pages or lines.
_REGION_BYTES = 1 << 34

#: Accesses per interleaving chunk when a phase mixes several kernels.
_CHUNK = 64


def _interleave_chunks(parts, rng):
    """Merge several address streams chunk-by-chunk in random order,
    preserving each stream's internal order."""
    chunks = []
    for part in parts:
        for start in range(0, part.shape[0], _CHUNK):
            chunks.append(part[start : start + _CHUNK])
    order = rng.permutation(len(chunks))
    return np.concatenate([chunks[i] for i in order])


@dataclass(frozen=True)
class KernelSpec:
    """One weighted kernel inside a phase.

    Attributes
    ----------
    kernel:
        Name from :data:`repro.workloads.generators.KERNELS`.
    weight:
        Relative share of the phase's memory operations.
    params:
        Kernel parameters (working-set sizes etc.); ``base`` is assigned
        automatically.
    """

    kernel: str
    weight: float = 1.0
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"kernel weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class Phase:
    """One behavioural phase of a workload.

    Attributes
    ----------
    name:
        Phase label (shows up in trace metadata).
    weight:
        Fraction of the workload's execution spent in this phase.
    kernels:
        Weighted kernel mix.
    write_fraction:
        Probability that a memory operation is a store.
    branch_model:
        ``biased`` | ``loop`` | ``random``.
    branch_params:
        Parameters for the branch model.
    branches_per_op:
        Branch instructions per memory operation.
    alu_per_op:
        Extra (non-memory, non-branch) instructions per memory operation.
    intensity:
        Scale on the interval's operation budget: 1.0 is nominal; an
        I/O-bound or sleepy phase may run fewer operations per sampling
        interval (< 1), a tight kernel more (> 1).
    """

    name: str
    weight: float
    kernels: tuple
    write_fraction: float = 0.3
    branch_model: str = "biased"
    branch_params: dict = field(default_factory=dict)
    branches_per_op: float = 0.4
    alu_per_op: float = 3.0
    intensity: float = 1.0

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"phase weight must be positive, got {self.weight}")
        if not self.kernels:
            raise ValueError(f"phase {self.name!r} has no kernels")
        if not (0.0 <= self.write_fraction <= 1.0):
            raise ValueError("write_fraction must be in [0, 1]")
        if self.branches_per_op < 0 or self.alu_per_op < 0:
            raise ValueError("instruction ratios must be non-negative")
        if self.intensity <= 0:
            raise ValueError("intensity must be positive")


class Workload:
    """A phase-structured synthetic workload.

    Parameters
    ----------
    name:
        Unique name within the suite.
    phases:
        Ordered phases; weights are normalized internally.
    region_seed:
        Deterministic index used to place this workload's address regions;
        defaults to a hash of the name.
    """

    def __init__(self, name, phases, region_seed=None):
        if not name:
            raise ValueError("workload needs a name")
        phases = tuple(phases)
        if not phases:
            raise ValueError(f"workload {name!r} has no phases")
        self.name = name
        self.phases = phases
        total = sum(p.weight for p in phases)
        self._weights = [p.weight / total for p in phases]
        if region_seed is None:
            import zlib

            region_seed = zlib.crc32(name.encode())
        self._region_seed = region_seed

    def __repr__(self):
        return f"Workload({self.name!r}, {len(self.phases)} phases)"

    def phase_schedule(self, n_intervals):
        """Assign each of ``n_intervals`` intervals to a phase index,
        contiguously and proportionally to phase weights. Every phase
        gets at least one interval when ``n_intervals >= len(phases)``."""
        if n_intervals < 1:
            raise ValueError("n_intervals must be >= 1")
        k = len(self.phases)
        if n_intervals <= k:
            return [min(i, k - 1) for i in range(n_intervals)]
        counts = [max(1, round(w * n_intervals)) for w in self._weights]
        # Trim/grow to exactly n_intervals, adjusting the largest phases.
        while sum(counts) > n_intervals:
            counts[int(np.argmax(counts))] -= 1
        while sum(counts) < n_intervals:
            counts[int(np.argmax(self._weights))] += 1
        schedule = []
        for idx, c in enumerate(counts):
            schedule.extend([idx] * c)
        return schedule

    def _kernel_base(self, phase_idx, kernel_idx):
        """Private address region for one kernel of one phase.

        Kernels keep per-(phase, kernel) regions disjoint within the
        workload; distinct workloads get disjoint regions via the name
        hash. All regions are page-aligned.
        """
        slot = (self._region_seed % 4096) * 64 + phase_idx * 8 + kernel_idx
        return slot * _REGION_BYTES

    def intervals(self, n_intervals, ops_per_interval, seed=0,
                  boost_first=0, boost_factor=1):
        """Materialize the workload as trace intervals.

        Parameters
        ----------
        n_intervals:
            Number of sampling intervals to produce.
        ops_per_interval:
            Nominal memory operations per interval (scaled by each
            phase's ``intensity``).
        seed:
            Trace RNG seed; the same seed reproduces the same trace.
        boost_first:
            Number of leading intervals whose operation count is
            multiplied by ``boost_factor``. Measurement sessions use this
            for warmup: real runs execute orders of magnitude more
            operations before any sampling window than a short simulated
            trace can, so boosted warmup intervals stand in for the
            missing footprint coverage.
        boost_factor:
            Multiplier for the boosted intervals (>= 1).

        Yields
        ------
        TraceInterval
        """
        if ops_per_interval < 1:
            raise ValueError("ops_per_interval must be >= 1")
        if boost_first < 0 or boost_factor < 1:
            raise ValueError(
                "boost_first must be >= 0 and boost_factor >= 1"
            )
        rng = np.random.default_rng(seed)
        cursor = {}
        schedule = self.phase_schedule(n_intervals)
        for i, phase_idx in enumerate(schedule):
            phase = self.phases[phase_idx]
            ops = ops_per_interval * (boost_factor if i < boost_first else 1)
            n_ops = max(1, int(round(ops * phase.intensity)))
            yield self._materialize(phase, phase_idx, n_ops, rng, cursor)

    def _materialize(self, phase, phase_idx, n_ops, rng, cursor):
        weights = np.array([k.weight for k in phase.kernels], dtype=float)
        weights /= weights.sum()
        counts = np.floor(weights * n_ops).astype(int)
        counts[0] += n_ops - counts.sum()
        parts = []
        for k_idx, (spec, count) in enumerate(zip(phase.kernels, counts)):
            if count <= 0:
                continue
            params = dict(spec.params)
            params.setdefault("base", self._kernel_base(phase_idx, k_idx))
            parts.append(
                generate_addresses(spec.kernel, int(count), rng, params,
                                   cursor=cursor)
            )
        if not parts:
            addresses = np.array([], dtype=np.int64)
        elif len(parts) == 1:
            addresses = parts[0]
        else:
            # Interleave the kernel streams in chunks: accesses mix the
            # way a loop nest alternates between arrays, but each
            # kernel's own spatial order (and thus its cache/TLB/prefetch
            # behaviour) is preserved within a chunk.
            addresses = _interleave_chunks(parts, rng)

        is_write = rng.uniform(size=addresses.shape[0]) < phase.write_fraction
        n_branches = int(round(n_ops * phase.branches_per_op))
        branch_params = dict(phase.branch_params)
        branch_params.setdefault("site_base", phase_idx * 100_000)
        sites, taken = generate_branches(
            phase.branch_model, n_branches, rng, branch_params
        )
        n_instructions = int(
            addresses.shape[0]
            + n_branches
            + round(n_ops * phase.alu_per_op)
        )
        return TraceInterval(
            addresses=addresses,
            is_write=is_write,
            branch_sites=sites,
            branch_taken=taken,
            n_instructions=n_instructions,
            phase_name=phase.name,
        )


@dataclass(frozen=True)
class Suite:
    """A named collection of workloads plus its Table III description."""

    name: str
    workloads: tuple
    description: str = ""

    def __post_init__(self):
        if not self.workloads:
            raise ValueError(f"suite {self.name!r} has no workloads")
        names = [w.name for w in self.workloads]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate workload names in suite {self.name!r}")

    def __len__(self):
        return len(self.workloads)

    def __iter__(self):
        return iter(self.workloads)

    def workload(self, name):
        """Look a workload up by name."""
        for w in self.workloads:
            if w.name == name:
                return w
        raise KeyError(f"no workload {name!r} in suite {self.name!r}")

    def subset(self, names, suffix="subset"):
        """A new suite restricted to the named workloads (order given by
        ``names``)."""
        return Suite(
            name=f"{self.name}-{suffix}",
            workloads=tuple(self.workload(n) for n in names),
            description=self.description,
        )
