"""User-defined suite models from declarative specs.

The six Table III suites ship as Python modules, but a downstream user
evaluating *their own* benchmark suite should not have to write code: a
suite can be declared as a plain dict (or JSON file) naming each
workload's phases, kernels, and parameters, mirroring the
:class:`repro.workloads.base` schema.

Example spec::

    {
      "name": "mysuite",
      "description": "two little workloads",
      "workloads": {
        "streamy": {
          "phases": [
            {"name": "main", "weight": 1.0,
             "kernels": [{"kernel": "sequential_stream",
                          "params": {"working_set": 1048576}}],
             "write_fraction": 0.4}
          ]
        },
        "pointer": {
          "phases": [
            {"name": "main", "weight": 1.0,
             "kernels": [{"kernel": "pointer_chase",
                          "params": {"working_set": 8388608}}]}
          ]
        }
      }
    }
"""

from __future__ import annotations

import json

from repro.workloads.base import KernelSpec, Phase, Suite, Workload
from repro.workloads.generators import BRANCH_MODELS, KERNELS

_PHASE_FIELDS = {
    "write_fraction", "branch_model", "branch_params",
    "branches_per_op", "alu_per_op", "intensity",
}


def _build_kernel(spec, where):
    if "kernel" not in spec:
        raise ValueError(f"{where}: kernel spec needs a 'kernel' name")
    kernel = spec["kernel"]
    if kernel not in KERNELS:
        raise ValueError(
            f"{where}: unknown kernel {kernel!r}; available: "
            f"{sorted(KERNELS)}"
        )
    return KernelSpec(
        kernel=kernel,
        weight=float(spec.get("weight", 1.0)),
        params=dict(spec.get("params", {})),
    )


def _build_phase(spec, where):
    if "kernels" not in spec or not spec["kernels"]:
        raise ValueError(f"{where}: phase needs a non-empty 'kernels' list")
    unknown = set(spec) - _PHASE_FIELDS - {"name", "weight", "kernels"}
    if unknown:
        raise ValueError(
            f"{where}: unknown phase fields {sorted(unknown)}"
        )
    branch_model = spec.get("branch_model", "biased")
    if branch_model not in BRANCH_MODELS:
        raise ValueError(
            f"{where}: unknown branch model {branch_model!r}; available: "
            f"{sorted(BRANCH_MODELS)}"
        )
    kernels = tuple(
        _build_kernel(k, f"{where}.kernels[{i}]")
        for i, k in enumerate(spec["kernels"])
    )
    return Phase(
        name=spec.get("name", "phase"),
        weight=float(spec.get("weight", 1.0)),
        kernels=kernels,
        write_fraction=float(spec.get("write_fraction", 0.3)),
        branch_model=branch_model,
        branch_params=dict(spec.get("branch_params", {})),
        branches_per_op=float(spec.get("branches_per_op", 0.4)),
        alu_per_op=float(spec.get("alu_per_op", 3.0)),
        intensity=float(spec.get("intensity", 1.0)),
    )


def suite_from_spec(spec):
    """Build a :class:`Suite` from a declarative dict spec.

    Returns
    -------
    repro.workloads.base.Suite
    """
    if "name" not in spec:
        raise ValueError("suite spec needs a 'name'")
    if "workloads" not in spec or not spec["workloads"]:
        raise ValueError("suite spec needs a non-empty 'workloads' map")
    workloads = []
    for wl_name, wl_spec in spec["workloads"].items():
        phases_spec = wl_spec.get("phases")
        if not phases_spec:
            raise ValueError(
                f"workload {wl_name!r} needs a non-empty 'phases' list"
            )
        phases = tuple(
            _build_phase(p, f"{wl_name}.phases[{i}]")
            for i, p in enumerate(phases_spec)
        )
        workloads.append(Workload(wl_name, phases))
    return Suite(
        name=spec["name"],
        workloads=tuple(workloads),
        description=spec.get("description", ""),
    )


def suite_from_json(path_or_text):
    """Build a Suite from a JSON file path or JSON string."""
    if isinstance(path_or_text, str) and path_or_text.lstrip().startswith(
        "{"
    ):
        spec = json.loads(path_or_text)
    else:
        with open(path_or_text) as f:
            spec = json.load(f)
    return suite_from_spec(spec)


def suite_to_spec(suite):
    """Serialize a Suite back to the declarative dict form (inverse of
    :func:`suite_from_spec` up to parameter defaults)."""
    return {
        "name": suite.name,
        "description": suite.description,
        "workloads": {
            w.name: {
                "phases": [
                    {
                        "name": p.name,
                        "weight": p.weight,
                        "kernels": [
                            {
                                "kernel": k.kernel,
                                "weight": k.weight,
                                "params": dict(k.params),
                            }
                            for k in p.kernels
                        ],
                        "write_fraction": p.write_fraction,
                        "branch_model": p.branch_model,
                        "branch_params": dict(p.branch_params),
                        "branches_per_op": p.branches_per_op,
                        "alu_per_op": p.alu_per_op,
                        "intensity": p.intensity,
                    }
                    for p in w.phases
                ]
            }
            for w in suite.workloads
        },
    }
