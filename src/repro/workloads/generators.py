"""Address-stream and branch-stream kernels.

Each kernel produces a numpy array of byte addresses with a
characteristic locality structure. Workload phases are weighted mixes of
these kernels (see :mod:`repro.workloads.base`). All kernels are
vectorized except the pointer chase, whose address sequence is inherently
serial; its loop is bounded by the (small) per-interval operation count.

Kernels are *stateful across intervals* via the ``cursor`` dict a caller
threads through: a streaming kernel continues where the previous interval
stopped, which keeps cache behaviour realistic across interval
boundaries.
"""

from __future__ import annotations

import numpy as np

LINE = 64


def sequential_stream(n, rng, working_set, stride=LINE, base=0, cursor=None):
    """Unit-stride (or strided) streaming sweep over a working set.

    Models copy/scan/stream kernels: very low cache miss rate within a
    line, misses exactly once per line, dTLB friendly.
    """
    start = 0 if cursor is None else cursor.get("seq", 0)
    offsets = (start + stride * np.arange(n)) % working_set
    if cursor is not None:
        cursor["seq"] = int((start + stride * n) % working_set)
    return base + offsets


def random_uniform(n, rng, working_set, base=0, granularity=LINE):
    """Uniform random accesses over a working set.

    Models hash tables and unstructured pointer soup: miss rate tracks
    ``working_set`` against each cache level's capacity.
    """
    slots = max(working_set // granularity, 1)
    return base + rng.integers(0, slots, size=n) * granularity


def zipfian(n, rng, working_set, alpha=1.1, base=0, granularity=LINE):
    """Zipf-distributed accesses: a few hot lines, a long cold tail.

    Models key-value stores and caches with skewed popularity. Uses the
    inverse-CDF of a truncated zeta distribution, vectorized.
    """
    slots = max(working_set // granularity, 1)
    ranks = np.arange(1, slots + 1, dtype=float)
    weights = ranks ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.uniform(size=n)
    idx = np.searchsorted(cdf, u)
    # Scatter ranks over the address space so hot lines do not all share
    # cache sets (deterministic multiplicative hash).
    scattered = (idx * 2654435761) % slots
    return base + scattered * granularity


def pointer_chase(n, rng, working_set, base=0, granularity=LINE,
                  cursor=None):
    """Serial walk of a random permutation: every access depends on the
    previous load.

    Models linked lists and graph traversals (the ``lat_mem_rd`` pattern):
    maximal miss rate once the working set exceeds a cache level, no
    spatial locality.
    """
    slots = max(working_set // granularity, 2)
    key = ("chase", working_set, base)
    if cursor is not None and key in cursor:
        perm, pos = cursor[key]
    else:
        perm = rng.permutation(slots)
        pos = int(perm[0])
    out = np.empty(n, dtype=np.int64)
    perm_list = perm.tolist()
    for i in range(n):
        out[i] = pos
        pos = perm_list[pos]
    if cursor is not None:
        cursor[key] = (perm, pos)
    return base + out * granularity


def hot_cold(n, rng, hot_bytes, cold_bytes, hot_fraction=0.9, base=0,
             granularity=LINE):
    """Bimodal locality: ``hot_fraction`` of accesses in a small hot
    region, the rest uniform over a large cold region.

    Models interpreter/VM workloads with a hot dispatch core.
    """
    hot_slots = max(hot_bytes // granularity, 1)
    cold_slots = max(cold_bytes // granularity, 1)
    is_hot = rng.uniform(size=n) < hot_fraction
    hot_addr = rng.integers(0, hot_slots, size=n)
    cold_addr = hot_slots + rng.integers(0, cold_slots, size=n)
    return base + np.where(is_hot, hot_addr, cold_addr) * granularity


def stencil2d(n, rng, rows, cols, element_bytes=8, base=0, cursor=None):
    """Five-point stencil sweep over a 2-D grid.

    Models HPC kernels (fluid dynamics, PDE solvers): mixed unit-stride
    and ``cols``-stride reuse, cache-blocking sensitive.
    """
    start = 0 if cursor is None else cursor.get("stencil", 0)
    total = rows * cols
    centers = (start + np.arange((n + 4) // 5)) % total
    if cursor is not None:
        cursor["stencil"] = int((start + centers.shape[0]) % total)
    r = centers // cols
    c = centers % cols
    north = ((r - 1) % rows) * cols + c
    south = ((r + 1) % rows) * cols + c
    west = r * cols + (c - 1) % cols
    east = r * cols + (c + 1) % cols
    pattern = np.stack([centers, north, south, west, east], axis=1).ravel()
    return base + pattern[:n] * element_bytes


def gather_scatter(n, rng, index_bytes, data_bytes, base=0,
                   granularity=LINE, cursor=None):
    """Alternating sequential index reads and random data accesses.

    Models sparse linear algebra and graph frontier expansion: half the
    stream is prefetch-friendly, half is not.
    """
    half = n // 2
    idx_part = sequential_stream(
        n - half, rng, working_set=index_bytes, base=base, cursor=cursor
    )
    data_part = random_uniform(
        half, rng, working_set=data_bytes,
        base=base + index_bytes, granularity=granularity,
    )
    out = np.empty(n, dtype=np.int64)
    out[0::2] = idx_part[: (n + 1) // 2]
    out[1::2] = data_part[: n // 2]
    return out


def page_stride(n, rng, working_set, page_bytes=4096, base=0, cursor=None):
    """One access per page, striding through a large region.

    Models TLB torture (``lat_mmap`` / page-fault microbenchmarks): every
    access touches a new page, maximizing dTLB misses and walks while
    barely using each cache line.
    """
    start = 0 if cursor is None else cursor.get("page", 0)
    pages = max(working_set // page_bytes, 1)
    offsets = ((start + np.arange(n)) % pages) * page_bytes
    if cursor is not None:
        cursor["page"] = int((start + n) % pages)
    return base + offsets


def fresh_pages(n, rng, page_bytes=4096, touches_per_page=1, base=0,
                cursor=None):
    """Touch never-before-seen pages, forever.

    Models allocation-heavy code and the ``lat_pagefault`` benchmark:
    every page is new, so the demand pager faults continuously.
    ``touches_per_page`` accesses land on each page before moving on
    (writing a freshly faulted page touches several of its cache lines),
    which sets the ratio of dTLB pressure to fault pressure.
    """
    if touches_per_page < 1:
        raise ValueError("touches_per_page must be >= 1")
    start = 0 if cursor is None else cursor.get("fresh", 0)
    page_idx = start + np.arange(n) // touches_per_page
    line_offset = (np.arange(n) % touches_per_page) * LINE
    addrs = base + page_idx * page_bytes + line_offset
    if cursor is not None:
        cursor["fresh"] = int(page_idx[-1] + 1) if n else start
    return addrs


KERNELS = {
    "sequential_stream": sequential_stream,
    "random_uniform": random_uniform,
    "zipfian": zipfian,
    "pointer_chase": pointer_chase,
    "hot_cold": hot_cold,
    "stencil2d": stencil2d,
    "gather_scatter": gather_scatter,
    "page_stride": page_stride,
    "fresh_pages": fresh_pages,
}

_STATEFUL = {"sequential_stream", "pointer_chase", "stencil2d",
             "gather_scatter", "page_stride", "fresh_pages"}


def generate_addresses(kernel, n, rng, params, cursor=None):
    """Dispatch to a kernel by name.

    Parameters
    ----------
    kernel:
        Key into :data:`KERNELS`.
    n:
        Number of accesses to generate.
    rng:
        :class:`numpy.random.Generator`.
    params:
        Kernel keyword arguments.
    cursor:
        Mutable per-workload state dict for stateful kernels.
    """
    if kernel not in KERNELS:
        raise KeyError(
            f"unknown kernel {kernel!r}; expected one of {sorted(KERNELS)}"
        )
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if n == 0:
        return np.array([], dtype=np.int64)
    fn = KERNELS[kernel]
    if kernel in _STATEFUL:
        return np.asarray(fn(n, rng, cursor=cursor, **params), dtype=np.int64)
    return np.asarray(fn(n, rng, **params), dtype=np.int64)


# -- branch streams ----------------------------------------------------------


def biased_branches(n, rng, n_sites=64, taken_prob=0.9, site_base=0):
    """Per-site biased branches: each site has a stable taken probability
    jittered around ``taken_prob``. Easy for bimodal predictors."""
    if n == 0:
        return (np.array([], dtype=np.int64), np.array([], dtype=bool))
    sites = site_base + rng.integers(0, max(n_sites, 1), size=n)
    site_bias = np.clip(
        taken_prob + rng.normal(scale=0.05, size=max(n_sites, 1)), 0.0, 1.0
    )
    taken = rng.uniform(size=n) < site_bias[sites - site_base]
    return sites, taken


def loop_branches(n, rng, body=8, n_sites=8, site_base=0):
    """Loop back-edges: taken ``body`` times then not taken, repeating.
    Highly predictable for history-based predictors."""
    if n == 0:
        return (np.array([], dtype=np.int64), np.array([], dtype=bool))
    pattern = np.concatenate([np.ones(body, dtype=bool), [False]])
    taken = np.tile(pattern, n // pattern.shape[0] + 1)[:n]
    sites = site_base + (np.arange(n) // (body + 1)) % max(n_sites, 1)
    return sites.astype(np.int64), taken


def random_branches(n, rng, n_sites=256, taken_prob=0.5, site_base=0):
    """Data-dependent branches: outcomes independent of history and site.
    Worst case for every predictor."""
    if n == 0:
        return (np.array([], dtype=np.int64), np.array([], dtype=bool))
    sites = site_base + rng.integers(0, max(n_sites, 1), size=n)
    taken = rng.uniform(size=n) < taken_prob
    return sites, taken


BRANCH_MODELS = {
    "biased": biased_branches,
    "loop": loop_branches,
    "random": random_branches,
}


def generate_branches(model, n, rng, params):
    """Dispatch to a branch model by name."""
    if model not in BRANCH_MODELS:
        raise KeyError(
            f"unknown branch model {model!r}; expected one of "
            f"{sorted(BRANCH_MODELS)}"
        )
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return BRANCH_MODELS[model](n, rng, **params)
