"""Trace-interval container.

A :class:`TraceInterval` is the unit of exchange between the workload
models and the CPU simulator: one sampling interval's worth of memory
accesses and branch outcomes, plus the total instruction count the
interval represents. The field names form the duck-typed protocol that
:meth:`repro.uarch.cpu.CPU.execute_interval` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TraceInterval:
    """One sampling interval of a workload's execution.

    Attributes
    ----------
    addresses:
        Byte addresses of data accesses, in program order.
    is_write:
        Store mask aligned with ``addresses``.
    branch_sites:
        Branch PC identifiers, in program order.
    branch_taken:
        Outcome per branch.
    n_instructions:
        Total retired instructions (memory + branch + ALU); must be at
        least ``len(addresses) + len(branch_sites)``.
    phase_name:
        Name of the workload phase this interval belongs to (metadata
        only; useful for phase-detection validation).
    """

    addresses: np.ndarray
    is_write: np.ndarray
    branch_sites: np.ndarray
    branch_taken: np.ndarray
    n_instructions: int
    phase_name: str = ""

    def __post_init__(self):
        self.addresses = np.asarray(self.addresses, dtype=np.int64)
        self.is_write = np.asarray(self.is_write, dtype=bool)
        self.branch_sites = np.asarray(self.branch_sites, dtype=np.int64)
        self.branch_taken = np.asarray(self.branch_taken, dtype=bool)
        if self.addresses.shape != self.is_write.shape:
            raise ValueError(
                f"addresses/is_write shape mismatch: "
                f"{self.addresses.shape} vs {self.is_write.shape}"
            )
        if self.branch_sites.shape != self.branch_taken.shape:
            raise ValueError(
                f"branch_sites/branch_taken shape mismatch: "
                f"{self.branch_sites.shape} vs {self.branch_taken.shape}"
            )
        if np.any(self.addresses < 0):
            raise ValueError("addresses must be non-negative")
        floor = self.n_memory_ops + self.n_branches
        if self.n_instructions < floor:
            raise ValueError(
                f"n_instructions ({self.n_instructions}) below the "
                f"interval's own operation count ({floor})"
            )

    @property
    def n_memory_ops(self):
        return int(self.addresses.shape[0])

    @property
    def n_branches(self):
        return int(self.branch_sites.shape[0])


def merge_intervals(parts, phase_name=""):
    """Concatenate several intervals into one (kernels within a phase are
    generated separately and merged in program order)."""
    parts = list(parts)
    if not parts:
        raise ValueError("nothing to merge")
    return TraceInterval(
        addresses=np.concatenate([p.addresses for p in parts]),
        is_write=np.concatenate([p.is_write for p in parts]),
        branch_sites=np.concatenate([p.branch_sites for p in parts]),
        branch_taken=np.concatenate([p.branch_taken for p in parts]),
        n_instructions=sum(p.n_instructions for p in parts),
        phase_name=phase_name or parts[0].phase_name,
    )
