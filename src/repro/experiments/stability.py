"""Score-stability analysis.

The paper reports single-run scores. This experiment asks two questions
the reproduction can answer that a hardware run cannot cheaply:

* **Within-suite stability**: bootstrap-resample a suite's workloads and
  read confidence intervals on the ClusterScore / CoverageScore /
  SpreadScore (the TrendScore resamples its series set the same way).
* **Ranking stability**: across trace-seed replications, how often does
  the cross-suite ordering of each score match the headline run's?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.matrix import CounterMatrix
from repro.engine import Engine
from repro.experiments.runner import (
    ExperimentConfig,
    measure_suites,
    perspector_for,
)
from repro.stats.bootstrap import bootstrap_statistic
from repro.workloads import load_suite


@dataclass(frozen=True)
class StabilityResult:
    """Bootstrap intervals and seed-replication agreement.

    Attributes
    ----------
    suite:
        Suite used for the bootstrap half.
    bootstrap:
        Score name -> :class:`BootstrapResult`.
    ranking_agreement:
        Score name -> fraction of seed replications whose cross-suite
        ranking matches the reference run's (1.0 = fully stable).
    n_replications:
        Seed replications used for the ranking half.
    """

    suite: str
    bootstrap: dict
    ranking_agreement: dict
    n_replications: int


def run(config=None, suite="sgxgauge",
        ranked_suites=("nbench", "lmbench", "sgxgauge"),
        n_boot=60, n_replications=3):
    """Run both stability analyses.

    Returns
    -------
    StabilityResult
    """
    config = config if config is not None else ExperimentConfig.quick()
    matrix = measure_suites([suite], config)[suite]
    seed = config.metric_seed

    # Subsampling (no replacement): the classic bootstrap's duplicated
    # rows bias distance-based statistics -- duplicates look like
    # perfectly tight clusters and shrink normalization ranges.
    n = matrix.n_workloads
    sub = max(4, n - 2)
    # Re-scoring goes through one shared engine: bootstrap replicates
    # that happen to redraw the same subsample (and each replication's
    # repeated kernel work) hit the content-addressed cache, and results
    # stay bit-identical to the plain kernel calls.
    engine = Engine.from_config(config)
    boot = {
        "cluster": bootstrap_statistic(
            matrix.values,
            lambda rows: engine.cluster_score(rows, seed=seed).value,
            n_boot=n_boot, rng=seed, replace=False, subsample_size=sub,
        ),
        "coverage": bootstrap_statistic(
            matrix.values,
            lambda rows: engine.coverage_score(rows).value,
            n_boot=n_boot, rng=seed, replace=False, subsample_size=sub,
        ),
        "spread": bootstrap_statistic(
            matrix.values,
            lambda rows: engine.spread_score(rows).value,
            n_boot=n_boot, rng=seed, replace=False, subsample_size=sub,
        ),
    }

    # Seed-replication ranking agreement.
    perspector = perspector_for(config)
    reference = {}
    replications = []
    for rep in range(n_replications + 1):
        rep_config = ExperimentConfig(
            n_intervals=config.n_intervals,
            ops_per_interval=config.ops_per_interval,
            warmup_intervals=config.warmup_intervals,
            warmup_boost=config.warmup_boost,
            seed=config.seed + 101 * rep,
            metric_seed=config.metric_seed,
        )
        session = rep_config.session()
        matrices = [
            CounterMatrix.from_measurement(session.run_suite(load_suite(s)))
            for s in ranked_suites
        ]
        comparison = perspector.compare(*matrices)
        rankings = {
            score: tuple(comparison.ranking(score))
            for score in ("cluster", "trend", "coverage", "spread")
        }
        if rep == 0:
            reference = rankings
        else:
            replications.append(rankings)

    agreement = {
        score: float(np.mean([
            rep[score] == reference[score] for rep in replications
        ]))
        for score in reference
    }
    return StabilityResult(
        suite=suite,
        bootstrap=boot,
        ranking_agreement=agreement,
        n_replications=n_replications,
    )


def render(result):
    lines = [f"score stability ({result.suite} bootstrap, "
             f"{result.n_replications} seed replications)", ""]
    lines.append("bootstrap 95% intervals (workload resampling):")
    for score, b in result.bootstrap.items():
        lines.append(
            f"  {score:<9} {b.estimate:.4f} in [{b.low:.4f}, {b.high:.4f}]"
        )
    lines.append("")
    lines.append("cross-suite ranking agreement across trace seeds:")
    for score, frac in result.ranking_agreement.items():
        lines.append(f"  {score:<9} {frac:.0%}")
    return "\n".join(lines)


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
