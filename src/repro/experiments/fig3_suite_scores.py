"""Fig. 3: the headline result -- four Perspector scores x six suites,
under three event-focus settings.

* Fig. 3a: all Table IV PMU counters;
* Fig. 3b: LLC-related events only;
* Fig. 3c: TLB-related events only.

The paper's qualitative claims (Section IV-A/B), which
``check_expected_shape`` verifies against the regenerated numbers:

1.  ALL: Ligra has the worst (highest) ClusterScore;
2.  ALL: PARSEC and SGXGauge have the two highest TrendScores;
3.  ALL: LMbench has the highest CoverageScore;
4.  LLC: PARSEC is in the best ClusterScore tier;
5.  LLC: PARSEC and SGXGauge still dominate the TrendScore;
6.  LLC: LMbench still has the highest CoverageScore, reduced vs ALL;
7.  TLB: SPEC'17 takes the highest CoverageScore;
8.  TLB: LMbench's CoverageScore collapses relative to its ALL value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import (
    ExperimentConfig,
    measure_suites,
    perspector_for,
)
from repro.workloads import available_suites

FOCUSES = ("all", "llc", "tlb")


@dataclass(frozen=True)
class Fig3Result:
    """Per-focus suite comparisons.

    Attributes
    ----------
    comparisons:
        ``{focus: SuiteComparison}`` for ``all``/``llc``/``tlb``.
    """

    comparisons: dict

    def scorecard(self, focus, suite):
        for card in self.comparisons[focus].scorecards:
            if card.suite_name == suite:
                return card
        raise KeyError(f"no scorecard for {suite!r} under {focus!r}")


def run(config=None, suites=None):
    """Regenerate Fig. 3a/b/c.

    Returns
    -------
    Fig3Result
    """
    config = config if config is not None else ExperimentConfig.full()
    names = list(suites) if suites is not None else available_suites()
    matrices = measure_suites(names, config)
    perspector = perspector_for(config)
    comparisons = {
        focus: perspector.compare(
            *[matrices[n] for n in names], focus=focus
        )
        for focus in FOCUSES
    }
    return Fig3Result(comparisons=comparisons)


def check_expected_shape(result):
    """Verify the paper's Section IV-A/B claims on a Fig3Result.

    Returns
    -------
    list[str]
        Human-readable failures (empty when every claim holds).
    """
    failures = []
    c_all = result.comparisons["all"]
    c_llc = result.comparisons["llc"]
    c_tlb = result.comparisons["tlb"]

    if c_all.ranking("cluster")[-1] != "ligra":
        failures.append(
            "ALL: expected ligra to have the worst cluster score, got "
            f"{c_all.ranking('cluster')[-1]}"
        )
    top_trend = set(c_all.ranking("trend")[:2])
    if top_trend != {"parsec", "sgxgauge"}:
        failures.append(
            f"ALL: expected parsec+sgxgauge to top trend, got {top_trend}"
        )
    if c_all.best("coverage") != "lmbench":
        failures.append(
            "ALL: expected lmbench to top coverage, got "
            f"{c_all.best('coverage')}"
        )
    llc_cluster = c_llc.ranking("cluster")
    if llc_cluster[0] not in ("parsec", "spec17"):
        failures.append(
            "LLC: expected parsec or spec17 to lead the cluster score, "
            f"got {llc_cluster[0]}"
        )
    if "parsec" in llc_cluster[-2:]:
        failures.append("LLC: expected parsec out of the worst cluster tier")
    if set(c_llc.ranking("trend")[:2]) != {"parsec", "sgxgauge"}:
        failures.append("LLC: expected parsec+sgxgauge to dominate trend")
    if c_llc.best("coverage") != "lmbench":
        failures.append("LLC: expected lmbench to keep the coverage lead")
    lm_all = result.scorecard("all", "lmbench").coverage
    lm_llc = result.scorecard("llc", "lmbench").coverage
    lm_tlb = result.scorecard("tlb", "lmbench").coverage
    if not lm_llc < lm_all:
        failures.append("LLC: expected lmbench coverage reduced vs ALL")
    if c_tlb.best("coverage") != "spec17":
        failures.append(
            "TLB: expected spec17 to take the coverage lead, got "
            f"{c_tlb.best('coverage')}"
        )
    if not lm_tlb < 0.5 * lm_all:
        failures.append(
            "TLB: expected lmbench coverage to collapse "
            f"(got {lm_tlb:.4f} vs ALL {lm_all:.4f})"
        )
    return failures


def render(result):
    parts = []
    for focus in FOCUSES:
        parts.append(result.comparisons[focus].table())
        parts.append("")
    # Bar panels for the headline (all-events) comparison, mirroring the
    # paper's Fig. 3a bar chart.
    for score in ("cluster", "trend", "coverage", "spread"):
        parts.append(result.comparisons["all"].bars(score))
        parts.append("")
    failures = check_expected_shape(result)
    if failures:
        parts.append("shape check FAILURES:")
        parts.extend(f"  - {f}" for f in failures)
    else:
        parts.append("shape check: all Section IV-A/B claims hold.")
    return "\n".join(parts)


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
