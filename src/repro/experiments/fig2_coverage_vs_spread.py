"""Fig. 2: why coverage alone is not enough.

The paper's Fig. 2 contrasts two synthetic suites in a 2-D parameter
space: suite WA has *high coverage but low spread* (a tight clump plus a
few extreme outliers inflating the variance) while suite WB has *good
coverage and good spread* (points tiling the space evenly). The
SpreadScore (Eq. 14) exists to separate the two cases that the
CoverageScore conflates.

``run`` constructs the two suites, scores them, and checks the paper's
claim: comparable (or higher) coverage for WA, but clearly better (lower)
spread for WB.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coverage_score import coverage_score
from repro.core.matrix import CounterMatrix
from repro.core.spread_score import spread_score


@dataclass(frozen=True)
class Fig2Result:
    """Scores of the two illustrative suites.

    Attributes
    ----------
    wa_points / wb_points:
        The 2-D point clouds.
    wa_coverage / wb_coverage:
        CoverageScores (Eq. 13).
    wa_spread / wb_spread:
        SpreadScores (Eq. 14; lower is better).
    """

    wa_points: np.ndarray
    wb_points: np.ndarray
    wa_coverage: float
    wb_coverage: float
    wa_spread: float
    wb_spread: float


def make_wa(n=16, seed=0):
    """Suite WA: clumped points plus variance-inflating outliers."""
    rng = np.random.default_rng(seed)
    n_outliers = max(2, n // 8)
    clump = 0.5 + rng.normal(scale=0.02, size=(n - n_outliers, 2))
    corners = np.array([[0.0, 0.0], [1.0, 1.0], [0.0, 1.0], [1.0, 0.0]])
    outliers = corners[:n_outliers]
    return np.clip(np.vstack([clump, outliers]), 0.0, 1.0)


def make_wb(n=16, seed=0):
    """Suite WB: an evenly spread (jittered-grid) point set."""
    rng = np.random.default_rng(seed)
    side = int(np.ceil(np.sqrt(n)))
    xs, ys = np.meshgrid(
        (np.arange(side) + 0.5) / side, (np.arange(side) + 0.5) / side
    )
    grid = np.column_stack([xs.ravel(), ys.ravel()])[:n]
    return np.clip(grid + rng.normal(scale=0.02, size=grid.shape), 0.0, 1.0)


def _as_matrix(points, name):
    return CounterMatrix(
        workloads=tuple(f"{name}_{i}" for i in range(points.shape[0])),
        events=("dim0", "dim1"),
        values=points,
        suite_name=name,
    )


def run(n=16, seed=0):
    """Regenerate the Fig. 2 comparison.

    Returns
    -------
    Fig2Result
    """
    wa = make_wa(n=n, seed=seed)
    wb = make_wb(n=n, seed=seed)
    ma = _as_matrix(wa, "WA")
    mb = _as_matrix(wb, "WB")
    return Fig2Result(
        wa_points=wa,
        wb_points=wb,
        wa_coverage=coverage_score(ma, normalize=False).value,
        wb_coverage=coverage_score(mb, normalize=False).value,
        wa_spread=spread_score(ma, normalize=False, axis="events").value,
        wb_spread=spread_score(mb, normalize=False, axis="events").value,
    )


def scatter_text(points, size=21):
    """ASCII scatter plot of 2-D points in [0, 1]^2."""
    grid = [[" "] * size for _ in range(size)]
    for x, y in points:
        col = min(int(x * (size - 1)), size - 1)
        row = size - 1 - min(int(y * (size - 1)), size - 1)
        grid[row][col] = "o"
    border = "+" + "-" * size + "+"
    return "\n".join(
        [border] + ["|" + "".join(r) + "|" for r in grid] + [border]
    )


def render(result):
    lines = [
        "Fig. 2 -- coverage vs spread",
        "",
        "suite WA (clump + outliers):",
        scatter_text(result.wa_points),
        f"  coverage={result.wa_coverage:.4f}  spread={result.wa_spread:.4f}",
        "",
        "suite WB (even tiling):",
        scatter_text(result.wb_points),
        f"  coverage={result.wb_coverage:.4f}  spread={result.wb_spread:.4f}",
        "",
        "WA's outliers buy it coverage, but its spread exposes the gaps;",
        "WB wins on spread at comparable coverage.",
    ]
    return "\n".join(lines)


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
