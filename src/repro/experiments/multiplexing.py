"""Footnote 1: PMU counter multiplexing loses accuracy.

The paper limits itself to the Table IV events because "capturing more
events than the available PMU counters results in a loss of accuracy due
to multiplexing by the OS". This experiment quantifies that with the PMU
model: measure one phase-rich workload through PMUs with decreasing slot
counts and report the per-event estimation error the duty-cycle scaling
introduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perf.events import TABLE_IV_EVENTS
from repro.perf.pmu import PMU
from repro.perf.sampler import IntervalSampler
from repro.perf.session import _workload_seed
from repro.uarch.config import xeon_e2186g
from repro.uarch.cpu import CPU
from repro.workloads import load_suite


@dataclass(frozen=True)
class MultiplexingResult:
    """Multiplexing error versus counter-slot count.

    Attributes
    ----------
    workload:
        The measured workload.
    slot_counts:
        PMU sizes evaluated (descending; the first is large enough to
        avoid multiplexing).
    mean_error / max_error:
        ``{n_slots: relative error}`` over all Table IV events.
    """

    workload: str
    slot_counts: tuple
    mean_error: dict
    max_error: dict


def run(workload_name="pagerank", suite_name="sgxgauge",
        slot_counts=(14, 7, 4, 2), n_intervals=24, ops_per_interval=1500,
        seed=7):
    """Measure multiplexing error on one workload.

    Returns
    -------
    MultiplexingResult
    """
    suite = load_suite(suite_name)
    workload = suite.workload(workload_name)
    wl_seed = _workload_seed(seed, workload.name)
    cpu = CPU(xeon_e2186g(), seed=wl_seed)
    sampler = IntervalSampler(cpu, warmup_intervals=2)
    samples = sampler.collect(
        workload.intervals(n_intervals + 2, ops_per_interval, seed=wl_seed)
    )
    mean_error = {}
    max_error = {}
    for n_slots in slot_counts:
        pmu = PMU(n_slots=n_slots, events=TABLE_IV_EVENTS)
        measurement = pmu.observe(samples)
        errors = [measurement.relative_error(e) for e in TABLE_IV_EVENTS]
        mean_error[n_slots] = float(np.mean(errors))
        max_error[n_slots] = float(np.max(errors))
    return MultiplexingResult(
        workload=workload_name,
        slot_counts=tuple(slot_counts),
        mean_error=mean_error,
        max_error=max_error,
    )


def render(result):
    lines = [
        f"footnote 1 -- PMU multiplexing error on {result.workload} "
        f"({len(TABLE_IV_EVENTS)} events programmed)",
        f"{'slots':>6} {'groups':>7} {'mean err':>9} {'max err':>9}",
    ]
    for n in result.slot_counts:
        groups = -(-len(TABLE_IV_EVENTS) // n)
        lines.append(
            f"{n:>6} {groups:>7} {result.mean_error[n]:>8.2%} "
            f"{result.max_error[n]:>8.2%}"
        )
    return "\n".join(lines)


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
