"""Shared experiment infrastructure.

All the figure/table drivers need the same thing first: measured counter
matrices (with series) for some suites, at consistent trace-length
settings. :func:`measure_suites` provides that with an in-process cache,
so a bench session that regenerates Fig. 3, Fig. 4 and Fig. 6 simulates
each suite exactly once.

Two preset configurations:

* :func:`ExperimentConfig.quick` -- short traces for CI/benches
  (seconds per suite);
* :func:`ExperimentConfig.full` -- the settings used for the numbers in
  EXPERIMENTS.md (minutes for all six suites).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.matrix import CounterMatrix
from repro.obs.trace import span
from repro.perf.session import PerfSession
from repro.workloads import load_suite

_CACHE = {}


@dataclass(frozen=True)
class ExperimentConfig:
    """Trace-length and seed settings shared by the experiment drivers.

    ``workers``, ``cache``, ``cache_dir`` and ``backend`` configure the
    scoring engine (:class:`repro.engine.Engine`): process fan-out
    width, the content-addressed kernel cache, its optional on-disk
    tier, and the compute backend. None of them affects any output bit -- they only change how fast the
    drivers regenerate the figures. With ``cache_dir`` set, the
    *measured suites themselves* also persist there (keyed by suite
    name + every measurement field), so a warm CLI invocation skips the
    suite simulations entirely.
    """

    n_intervals: int = 16
    ops_per_interval: int = 1500
    warmup_intervals: int = 6
    warmup_boost: int = 8
    seed: int = 7
    metric_seed: int = 3
    workers: int = 1
    cache: bool = True
    cache_dir: str | None = None
    backend: str | None = None
    shards: str | None = None
    #: Where to append longitudinal run-history records
    #: (:mod:`repro.obs.history`); ``None`` disables recording. Like
    #: the other engine knobs, it never affects an output bit.
    history_dir: str | None = None

    def measurement_key(self):
        """The fields that determine measured traces. Scoring knobs
        (``metric_seed``, ``workers``, ``cache``, ``cache_dir``,
        ``backend``, ``shards``, ``history_dir``) are excluded, so
        re-scoring the same traces under different settings reuses the
        measurement cache."""
        return (self.n_intervals, self.ops_per_interval,
                self.warmup_intervals, self.warmup_boost, self.seed)

    @classmethod
    def quick(cls):
        """Small traces: fast enough for the pytest-benchmark harness."""
        return cls(n_intervals=12, ops_per_interval=800,
                   warmup_intervals=4, warmup_boost=6)

    @classmethod
    def full(cls):
        """The EXPERIMENTS.md settings."""
        return cls()

    def session(self):
        """Build the PerfSession these settings describe."""
        return PerfSession(
            n_intervals=self.n_intervals,
            ops_per_interval=self.ops_per_interval,
            warmup_intervals=self.warmup_intervals,
            warmup_boost=self.warmup_boost,
            seed=self.seed,
        )


def measure_suites(names, config=None):
    """Measured CounterMatrix per suite, cached per (suite, config).

    Parameters
    ----------
    names:
        Suite names (see :func:`repro.workloads.available_suites`).
    config:
        :class:`ExperimentConfig`; default :meth:`ExperimentConfig.full`.

    Returns
    -------
    dict[str, CounterMatrix]
    """
    config = config if config is not None else ExperimentConfig.full()
    disk = _disk_for(config)
    out = {}
    session = None
    for name in names:
        key = (name, config.measurement_key())
        if key not in _CACHE:
            matrix, session = _measure_suite(name, config, disk, session)
            _CACHE[key] = matrix
        out[name] = _CACHE[key]
    return out


def _measure_suite(name, config, disk, session):
    """Measure one suite, disk tier consulted first.

    The whole computation between here and the ``disk.put`` is a pure
    function of (suite name, measurement key) -- ``repro lint --deep``
    proves that (rule ``cache-purity``); the process-level memo in
    :func:`measure_suites` stays outside the cached boundary. Returns
    ``(matrix, session)``: the session is created lazily on the first
    simulated (non-disk-hit) measurement and reused by the caller.
    """
    with span("experiment.measure", suite=name) as sp:
        dkey = None
        if disk is not None:
            from repro.engine.cache import MISS, content_key

            dkey = content_key("measured-suite", name,
                               *config.measurement_key())
            cached = disk.get(dkey)
            if cached is not MISS:
                sp.set(source="disk")
                return cached, session
        if session is None:
            session = config.session()
        measurement = session.run_suite(load_suite(name))
        matrix = CounterMatrix.from_measurement(measurement)
        sp.set(source="simulated")
        if disk is not None:
            disk.put(dkey, matrix)
    return matrix, session


_DISK_TIERS = {}


def _disk_for(config):
    """The measurement disk tier for a config (one
    :class:`~repro.engine.diskcache.DiskCache` per directory, shared
    with the scoring engine's tier -- same root, same key space)."""
    cache_dir = getattr(config, "cache_dir", None)
    if not cache_dir or not getattr(config, "cache", True):
        return None
    if cache_dir not in _DISK_TIERS:
        from repro.engine.diskcache import DiskCache

        _DISK_TIERS[cache_dir] = DiskCache(cache_dir)
    return _DISK_TIERS[cache_dir]


def perspector_for(config, session=None, engine=None):
    """A :class:`~repro.core.perspector.Perspector` wired to an
    :class:`ExperimentConfig`'s scoring knobs (``metric_seed``,
    ``workers``, ``cache``). Passing ``engine`` scores through a shared
    (already-warm) :class:`~repro.engine.Engine` instead of building a
    private one -- the scoring daemon's path; the engine is a pure
    accelerator, so the scorecard bits are identical either way."""
    from repro.core.perspector import Perspector, PerspectorConfig

    return Perspector(
        session=session,
        config=PerspectorConfig(
            seed=config.metric_seed,
            workers=config.workers,
            cache=config.cache,
            cache_dir=getattr(config, "cache_dir", None),
            backend=getattr(config, "backend", None),
            shards=getattr(config, "shards", None),
        ),
        engine=engine,
    )


def clear_cache():
    """Drop all cached measurements (tests use this for isolation)."""
    _CACHE.clear()
