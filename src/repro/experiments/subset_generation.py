"""Section IV-C: benchmark-suite subset generation.

The paper reduces SPEC'17's 43 workloads to 8 with LHS and reports a
6.53% mean deviation between the subset's Perspector scores and the full
suite's. ``run`` regenerates that experiment and adds the comparison the
paper implies but does not print: the same-size subsets chosen by random
sampling, the prior-work PCA+hierarchical pipeline, and greedy max-min,
all scored identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.greedy_subset import GreedyMaxMinSubsetter
from repro.baselines.pca_hierarchical import PCAHierarchicalSubsetter
from repro.core.matrix import CounterMatrix
from repro.core.subset import (
    LHSSubsetGenerator,
    SubsetReport,
    _scores,
    random_subset_report,
)
from repro.engine import Engine
from repro.experiments.runner import ExperimentConfig, measure_suites

SUBSET_SUITE = "spec17"
SUBSET_SIZE = 8


@dataclass(frozen=True)
class SubsetExperimentResult:
    """All subsetting methods on one suite.

    Attributes
    ----------
    suite:
        Suite name (SPEC'17 in the paper).
    subset_size:
        Target size (8 in the paper).
    lhs:
        The LHS :class:`SubsetReport` (the paper's method).
    random_reports:
        Several random-subset reports (chance baseline).
    prior_work:
        PCA+hierarchical subset report (Table I methodology).
    greedy:
        Greedy max-min subset report.
    """

    suite: str
    subset_size: int
    lhs: SubsetReport
    random_reports: tuple
    prior_work: SubsetReport
    greedy: SubsetReport

    @property
    def random_mean_deviation(self):
        return float(np.mean(
            [r.mean_deviation_pct for r in self.random_reports]
        ))


def _report_for(matrix, names, seed, full_scores=None, engine=None):
    """Score an arbitrary named subset exactly like LHSSubsetGenerator."""
    subset_matrix = matrix.select_workloads(names)
    if full_scores is None:
        full_scores = _scores(matrix, seed=seed, engine=engine)
    subset_scores = _scores(subset_matrix, seed=seed, bounds_from=matrix,
                            engine=engine)
    deviations = {}
    for key, full_value in full_scores.items():
        sub_value = subset_scores[key]
        if np.isnan(full_value) or np.isnan(sub_value):
            continue
        denom = abs(full_value) if full_value != 0 else 1.0
        deviations[key] = 100.0 * abs(sub_value - full_value) / denom
    return SubsetReport(
        selected=tuple(names),
        full_scores=full_scores,
        subset_scores=subset_scores,
        deviations=deviations,
        mean_deviation_pct=float(np.mean(list(deviations.values()))),
    )


def run(config=None, suite=SUBSET_SUITE, subset_size=SUBSET_SIZE,
        n_random=5):
    """Regenerate the Section IV-C experiment.

    Returns
    -------
    SubsetExperimentResult
    """
    config = config if config is not None else ExperimentConfig.full()
    matrix = measure_suites([suite], config)[suite]
    seed = config.metric_seed

    # One engine for the whole experiment: every method re-scores subsets
    # of the same matrix, so K-means fits, DTW pairs and PCA results
    # recur across reports and hit the content-addressed cache.
    engine = Engine.from_config(config)
    full_scores = _scores(matrix, seed=seed,
                          engine=engine)  # shared baseline, computed once
    lhs = LHSSubsetGenerator(subset_size=subset_size, seed=seed).report(
        matrix, seed=seed, full_scores=full_scores, engine=engine
    )
    randoms = tuple(
        random_subset_report(matrix, subset_size, seed=seed + i,
                             full_scores=full_scores, engine=engine)
        for i in range(n_random)
    )
    prior = _report_for(
        matrix,
        PCAHierarchicalSubsetter(subset_size=subset_size).select(matrix),
        seed, full_scores, engine=engine,
    )
    greedy = _report_for(
        matrix,
        GreedyMaxMinSubsetter(subset_size=subset_size).select(matrix),
        seed, full_scores, engine=engine,
    )
    return SubsetExperimentResult(
        suite=suite,
        subset_size=subset_size,
        lhs=lhs,
        random_reports=randoms,
        prior_work=prior,
        greedy=greedy,
    )


def render(result):
    lines = [
        f"Section IV-C -- {result.suite}: "
        f"{len(result.lhs.full_scores)} scores, "
        f"subset size {result.subset_size}",
        "",
        "LHS (the paper's method):",
        str(result.lhs),
        "",
        f"random subsets (n={len(result.random_reports)}): mean deviation "
        f"{result.random_mean_deviation:.2f}%",
        "",
        "prior-work PCA+hierarchical representatives: "
        f"{result.prior_work.mean_deviation_pct:.2f}% deviation",
        "  " + ", ".join(result.prior_work.selected),
        "",
        "greedy max-min: "
        f"{result.greedy.mean_deviation_pct:.2f}% deviation",
        "  " + ", ".join(result.greedy.selected),
        "",
        f"paper reference: 43 -> 8 with 6.53% deviation.",
    ]
    return "\n".join(lines)


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
