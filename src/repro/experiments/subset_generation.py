"""Section IV-C: benchmark-suite subset generation.

The paper reduces SPEC'17's 43 workloads to 8 with LHS and reports a
6.53% mean deviation between the subset's Perspector scores and the full
suite's. ``run`` regenerates that experiment and adds the comparison the
paper implies but does not print: the same-size subsets chosen by random
sampling, the prior-work PCA+hierarchical pipeline, greedy max-min, and
a multi-candidate swap search -- all scored identically.

Every method is scored through one shared
:class:`~repro.engine.subset_eval.SubsetEvaluator`: the full-suite
kernels (normalized matrix, per-row KS statistics, per-event DTW
matrices) are precomputed once and each candidate subset is scored by
index slicing -- bit-identical to the old per-report ``_scores`` path,
but cheap enough that the search can afford a real candidate pool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import baseline_subsets
from repro.core.subset import (
    LHSSubsetGenerator,
    SubsetReport,
    _scores,
    random_subset_report,
    report_from_scores,
)
from repro.engine import Engine, SubsetEvaluator, SubsetSearch
from repro.experiments.runner import ExperimentConfig, measure_suites

SUBSET_SUITE = "spec17"
SUBSET_SIZE = 8

#: Candidate-evaluation budget of the swap search row.
SEARCH_CANDIDATES = 24


@dataclass(frozen=True)
class SubsetExperimentResult:
    """All subsetting methods on one suite.

    Attributes
    ----------
    suite:
        Suite name (SPEC'17 in the paper).
    subset_size:
        Target size (8 in the paper).
    lhs:
        The LHS :class:`SubsetReport` (the paper's method).
    random_reports:
        Several random-subset reports (chance baseline).
    prior_work:
        PCA+hierarchical subset report (Table I methodology).
    greedy:
        Greedy max-min subset report.
    search:
        :class:`~repro.engine.subset_eval.SubsetSearchResult` of the
        swap local search (what a candidate pool buys over one-shot
        LHS).
    """

    suite: str
    subset_size: int
    lhs: SubsetReport
    random_reports: tuple
    prior_work: SubsetReport
    greedy: SubsetReport
    search: object = None

    @property
    def random_mean_deviation(self):
        return float(np.mean(
            [r.mean_deviation_pct for r in self.random_reports]
        ))


def _report_for(matrix, names, seed, full_scores=None, engine=None,
                evaluator=None):
    """Score an arbitrary named subset exactly like LHSSubsetGenerator."""
    if evaluator is not None:
        return evaluator.evaluate(names)
    subset_matrix = matrix.select_workloads(names)
    if full_scores is None:
        full_scores = _scores(matrix, seed=seed, engine=engine)
    subset_scores = _scores(subset_matrix, seed=seed, bounds_from=matrix,
                            engine=engine)
    return report_from_scores(names, full_scores, subset_scores)


def run(config=None, suite=SUBSET_SUITE, subset_size=SUBSET_SIZE,
        n_random=5, n_search=SEARCH_CANDIDATES):
    """Regenerate the Section IV-C experiment.

    Returns
    -------
    SubsetExperimentResult
    """
    config = config if config is not None else ExperimentConfig.full()
    matrix = measure_suites([suite], config)[suite]
    seed = config.metric_seed

    # One engine plus one sliced evaluator for the whole experiment:
    # the full-suite kernels are computed once, every method's subsets
    # are scored by slicing them, and anything that must re-run (K-means,
    # PCA) hits the engine's content-addressed cache across reports.
    engine = Engine.from_config(config)
    evaluator = SubsetEvaluator(matrix, seed=seed, engine=engine)
    full_scores = evaluator.full_scores
    lhs = LHSSubsetGenerator(subset_size=subset_size, seed=seed).report(
        matrix, seed=seed, full_scores=full_scores, evaluator=evaluator
    )
    randoms = tuple(
        random_subset_report(matrix, subset_size, seed=seed + i,
                             full_scores=full_scores, evaluator=evaluator)
        for i in range(n_random)
    )
    baselines = baseline_subsets(matrix, subset_size)
    prior = _report_for(matrix, baselines["prior_pca_hierarchical"],
                        seed, full_scores, evaluator=evaluator)
    greedy = _report_for(matrix, baselines["greedy_maxmin"],
                         seed, full_scores, evaluator=evaluator)
    search = SubsetSearch(
        matrix, subset_size, seed=seed, evaluator=evaluator,
    ).search(n_search, method="swap")
    return SubsetExperimentResult(
        suite=suite,
        subset_size=subset_size,
        lhs=lhs,
        random_reports=randoms,
        prior_work=prior,
        greedy=greedy,
        search=search,
    )


def render(result):
    lines = [
        f"Section IV-C -- {result.suite}: "
        f"{len(result.lhs.full_scores)} scores, "
        f"subset size {result.subset_size}",
        "",
        "LHS (the paper's method):",
        str(result.lhs),
        "",
        f"random subsets (n={len(result.random_reports)}): mean deviation "
        f"{result.random_mean_deviation:.2f}%",
        "",
        "prior-work PCA+hierarchical representatives: "
        f"{result.prior_work.mean_deviation_pct:.2f}% deviation",
        "  " + ", ".join(result.prior_work.selected),
        "",
        "greedy max-min: "
        f"{result.greedy.mean_deviation_pct:.2f}% deviation",
        "  " + ", ".join(result.greedy.selected),
    ]
    if result.search is not None:
        lines += [
            "",
            str(result.search),
        ]
    lines += [
        "",
        f"paper reference: 43 -> 8 with 6.53% deviation.",
    ]
    return "\n".join(lines)


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
