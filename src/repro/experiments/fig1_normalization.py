"""Fig. 1: normalization of the LLC-miss trend for five workloads.

The paper's Fig. 1 shows the LLC-miss time series of PageRank, HashJoin,
BFS, BTree, and OpenSSL (SGXGauge members) before and after the
Section III-B.1 normalization: the CDF bounds the y-axis to [0, 100] and
execution-time percentiles align the x-axis, so OpenSSL's small absolute
counts no longer vanish next to PageRank's spikes.

``run`` returns raw and normalized series; ``render`` prints compact
text sparklines of both, plus the before/after dynamic-range statistics
that demonstrate the normalization's point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.normalization import normalize_series_set
from repro.experiments.runner import ExperimentConfig, measure_suites

FIG1_WORKLOADS = ("pagerank", "hashjoin", "bfs", "btree", "openssl")
FIG1_EVENT = "LLC-load-misses"

_SPARK_LEVELS = " .:-=+*#%@"


@dataclass(frozen=True)
class Fig1Result:
    """Raw and normalized Fig. 1 series.

    Attributes
    ----------
    workloads:
        The five Fig. 1 workload names.
    raw:
        Raw per-interval LLC-miss series per workload.
    normalized:
        The Section III-B.1-normalized series (values in [0, 100]).
    raw_range_ratio:
        max(series maxima) / max(min positive series maximum, 1): the
        cross-workload dynamic range before normalization.
    normalized_range_ratio:
        Same statistic after normalization (bounded near 1).
    """

    workloads: tuple
    raw: dict
    normalized: dict
    raw_range_ratio: float
    normalized_range_ratio: float


def sparkline(series, width=48):
    """Text sparkline of a series (for terminal rendering)."""
    s = np.asarray(series, dtype=float)
    if s.size > width:
        idx = np.linspace(0, s.size - 1, width).astype(int)
        s = s[idx]
    lo, hi = s.min(), s.max()
    span = hi - lo
    if span == 0:
        return _SPARK_LEVELS[0] * s.size
    levels = ((s - lo) / span * (len(_SPARK_LEVELS) - 1)).astype(int)
    return "".join(_SPARK_LEVELS[v] for v in levels)


def run(config=None):
    """Regenerate the Fig. 1 data.

    Returns
    -------
    Fig1Result
    """
    config = config if config is not None else ExperimentConfig.full()
    matrix = measure_suites(["sgxgauge"], config)["sgxgauge"]
    raw = {}
    for name in FIG1_WORKLOADS:
        idx = matrix.workloads.index(name)
        raw[name] = np.asarray(matrix.series[FIG1_EVENT][idx], dtype=float)

    normalized_list = normalize_series_set(
        [raw[name] for name in FIG1_WORKLOADS]
    )
    normalized = dict(zip(FIG1_WORKLOADS, normalized_list))

    maxima = np.array([max(raw[n].max(), 1.0) for n in FIG1_WORKLOADS])
    raw_ratio = float(maxima.max() / max(maxima.min(), 1.0))
    norm_maxima = np.array(
        [max(normalized[n].max(), 1.0) for n in FIG1_WORKLOADS]
    )
    norm_ratio = float(norm_maxima.max() / max(norm_maxima.min(), 1.0))
    return Fig1Result(
        workloads=FIG1_WORKLOADS,
        raw=raw,
        normalized=normalized,
        raw_range_ratio=raw_ratio,
        normalized_range_ratio=norm_ratio,
    )


def render(result):
    """Text rendering of Fig. 1."""
    lines = [
        f"Fig. 1 -- normalization of the {FIG1_EVENT} trend",
        "",
        "raw series (each line self-scaled; absolute maxima differ by "
        f"{result.raw_range_ratio:.0f}x):",
    ]
    for name in result.workloads:
        peak = result.raw[name].max()
        lines.append(f"  {name:<10} |{sparkline(result.raw[name])}| "
                     f"peak={peak:.0f}")
    lines.append("")
    lines.append(
        "normalized series (shared [0, 100] axis, percentile time; "
        f"maxima ratio {result.normalized_range_ratio:.2f}x):"
    )
    for name in result.workloads:
        lines.append(
            f"  {name:<10} |{sparkline(result.normalized[name])}|"
        )
    return "\n".join(lines)


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
