"""Machine-sensitivity ablations.

The Perspector scores are functions of (suite, machine): the same suite
scores differently on different hardware, which is exactly why the
paper pins Table II so precisely. These ablations vary the simulated
machine and measure how the scores of one suite move:

* **cache replacement policy** (LRU / FIFO / random);
* **hardware prefetcher** (on / off);
* **branch predictor** (static / bimodal / gshare / tournament).

Each knob changes the measured counters, so score shifts here quantify
how machine-specific a Perspector verdict is.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.matrix import CounterMatrix
from repro.core.perspector import Perspector
from repro.perf.session import PerfSession
from repro.uarch.config import BranchConfig, xeon_e2186g
from repro.workloads import load_suite


@dataclass(frozen=True)
class MachineAblationResult:
    """Scorecards of one suite across machine variants.

    Attributes
    ----------
    suite:
        Measured suite.
    by_policy:
        Replacement policy -> SuiteScorecard.
    by_prefetcher:
        ``True``/``False`` -> SuiteScorecard.
    by_predictor:
        Predictor kind -> SuiteScorecard.
    """

    suite: str
    by_policy: dict
    by_prefetcher: dict
    by_predictor: dict


def _score_on(machine, suite, n_intervals, ops_per_interval, seed,
              metric_seed):
    session = PerfSession(
        machine=machine, n_intervals=n_intervals,
        ops_per_interval=ops_per_interval, warmup_intervals=4,
        warmup_boost=6, seed=seed,
    )
    matrix = CounterMatrix.from_measurement(session.run_suite(suite))
    return Perspector(seed=metric_seed).score(matrix)


def run(suite_name="sgxgauge", n_intervals=12, ops_per_interval=800,
        seed=7, metric_seed=3):
    """Score one suite across machine variants.

    Returns
    -------
    MachineAblationResult
    """
    suite = load_suite(suite_name)
    base = xeon_e2186g()

    by_policy = {
        policy: _score_on(base.with_policy(policy), suite, n_intervals,
                          ops_per_interval, seed, metric_seed)
        for policy in ("lru", "fifo", "random")
    }
    by_prefetcher = {
        enabled: _score_on(
            replace(base, enable_prefetcher=enabled), suite, n_intervals,
            ops_per_interval, seed, metric_seed,
        )
        for enabled in (True, False)
    }
    by_predictor = {
        kind: _score_on(
            replace(base, branch=BranchConfig(
                kind=kind, table_bits=base.branch.table_bits,
                history_bits=base.branch.history_bits,
                mispredict_penalty=base.branch.mispredict_penalty,
            )),
            suite, n_intervals, ops_per_interval, seed, metric_seed,
        )
        for kind in ("static", "bimodal", "gshare", "tournament")
    }
    return MachineAblationResult(
        suite=suite_name,
        by_policy=by_policy,
        by_prefetcher=by_prefetcher,
        by_predictor=by_predictor,
    )


def _table(rows):
    header = (
        f"{'variant':<14} {'cluster':>9} {'trend':>9} {'coverage':>9} "
        f"{'spread':>9}"
    )
    lines = [header, "-" * len(header)]
    for label, card in rows:
        lines.append(
            f"{label:<14} {card.cluster:>9.4f} {card.trend:>9.1f} "
            f"{card.coverage:>9.4f} {card.spread:>9.4f}"
        )
    return "\n".join(lines)


def render(result):
    parts = [f"machine-sensitivity ablations on {result.suite}", ""]
    parts.append("replacement policy:")
    parts.append(_table(sorted(result.by_policy.items())))
    parts.append("")
    parts.append("hardware prefetcher:")
    parts.append(_table(
        [("on" if k else "off", v)
         for k, v in sorted(result.by_prefetcher.items(), reverse=True)]
    ))
    parts.append("")
    parts.append("branch predictor:")
    parts.append(_table(sorted(result.by_predictor.items())))
    return "\n".join(parts)


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
