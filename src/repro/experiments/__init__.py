"""Experiment drivers: one module per paper table/figure.

Every module exposes ``run(...)`` returning structured data and a
``render(...)``/``main()`` that prints the paper artifact as text. The
benchmark harness under ``benchmarks/`` calls the same ``run`` functions,
so the regenerated numbers in EXPERIMENTS.md and the bench output are
identical by construction.

| module                     | paper artifact                         |
|----------------------------|----------------------------------------|
| fig1_normalization         | Fig. 1 (trend normalization)           |
| fig2_coverage_vs_spread    | Fig. 2 (coverage vs spread)            |
| fig3_suite_scores          | Fig. 3a/b/c (scores x focus)           |
| fig4_clustering            | Fig. 4 (Nbench vs SGXGauge clusters)   |
| fig5_trend                 | Fig. 5 (LLC-miss trends)               |
| fig6_pca_coverage          | Fig. 6 (PCA coverage)                  |
| subset_generation          | Section IV-C (SPEC'17 43 -> 8 via LHS) |
| multiplexing               | footnote 1 (PMU multiplexing error)    |
| ablations                  | design-choice ablations (DESIGN.md)    |
| machine_ablations          | machine-sensitivity ablations          |
| stability                  | bootstrap / seed-replication stability |
"""

from repro.experiments.runner import (
    ExperimentConfig,
    measure_suites,
    perspector_for,
)

__all__ = ["ExperimentConfig", "measure_suites", "perspector_for"]
