"""Fig. 4: clustering in Nbench and SGXGauge.

The paper's Fig. 4 scatters the two suites' workloads in the first two
PCA components with their K-means cluster assignments, showing visible
grouping in Nbench (similar small kernels) and a looser structure in
SGXGauge (diverse applications).

``run`` reproduces the pipeline: normalize each suite's matrix, project
to PCA(2), cluster at the silhouette-best k, and report the silhouette
values that quantify what the scatter shows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cluster_score import cluster_score
from repro.core.normalization import normalize_matrix
from repro.experiments.runner import ExperimentConfig, measure_suites
from repro.stats.pca import PCA

FIG4_SUITES = ("nbench", "sgxgauge")


@dataclass(frozen=True)
class SuiteClustering:
    """One suite's Fig. 4 panel.

    Attributes
    ----------
    suite:
        Suite name.
    workloads:
        Row order of ``points``.
    points:
        PCA(2) projection of the normalized counter matrix.
    labels:
        K-means labels at the silhouette-best k.
    best_k:
        That k.
    silhouette_at_best_k:
        Eq. 5 silhouette at ``best_k`` (the "how clustered" number).
    cluster_score:
        The full Eq. 6 ClusterScore.
    """

    suite: str
    workloads: tuple
    points: np.ndarray
    labels: np.ndarray
    best_k: int
    silhouette_at_best_k: float
    cluster_score: float


@dataclass(frozen=True)
class Fig4Result:
    panels: dict

    def panel(self, suite):
        return self.panels[suite]


def run(config=None, suites=FIG4_SUITES):
    """Regenerate Fig. 4.

    Returns
    -------
    Fig4Result
    """
    config = config if config is not None else ExperimentConfig.full()
    matrices = measure_suites(list(suites), config)
    panels = {}
    for suite in suites:
        matrix = matrices[suite]
        normalized = normalize_matrix(matrix)
        projection = PCA(n_components=2).fit_transform(normalized.values)
        score = cluster_score(matrix, seed=config.metric_seed)
        panels[suite] = SuiteClustering(
            suite=suite,
            workloads=matrix.workloads,
            points=projection.transformed,
            labels=score.labels_at_best_k,
            best_k=score.best_k,
            silhouette_at_best_k=score.per_k[score.best_k],
            cluster_score=score.value,
        )
    return Fig4Result(panels=panels)


def scatter_text(panel, size=23):
    """ASCII scatter of the PCA(2) points, glyph = cluster label."""
    pts = panel.points
    lo = pts.min(axis=0)
    span = np.where(np.ptp(pts, axis=0) == 0, 1.0, np.ptp(pts, axis=0))
    grid = [[" "] * size for _ in range(size)]
    glyphs = "ox+*#@%&"
    for (x, y), label in zip(pts, panel.labels):
        col = min(int((x - lo[0]) / span[0] * (size - 1)), size - 1)
        row = size - 1 - min(int((y - lo[1]) / span[1] * (size - 1)),
                             size - 1)
        grid[row][col] = glyphs[label % len(glyphs)]
    border = "+" + "-" * size + "+"
    return "\n".join(
        [border] + ["|" + "".join(r) + "|" for r in grid] + [border]
    )


def render(result):
    lines = ["Fig. 4 -- clustering in Nbench and SGXGauge", ""]
    for suite, panel in result.panels.items():
        lines.append(
            f"{suite}: best_k={panel.best_k}, "
            f"silhouette={panel.silhouette_at_best_k:.3f}, "
            f"ClusterScore={panel.cluster_score:.3f}"
        )
        lines.append(scatter_text(panel))
        lines.append("")
    return "\n".join(lines)


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
