"""Design-choice ablations.

DESIGN.md calls out the knobs the paper fixes without justification;
these ablations measure how much each one matters, on one diverse suite
(SGXGauge) plus SPEC'17 for the subsetting comparison:

* **PCA variance target** (Eq. 11 uses 0.98): coverage score vs target;
* **K-means restarts** (ClusterScore stability vs restart count);
* **DTW band** (unconstrained vs Sakoe-Chiba banded TrendScore);
* **Eq. 14 axis** (per-workload literal vs per-event reading);
* **series CDF reading** (quantized / per-series / pooled);
* **subsetting method** (LHS vs random vs prior-work vs greedy --
  shares :mod:`repro.experiments.subset_generation`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.cluster_score import cluster_score
from repro.core.coverage_score import coverage_score
from repro.core.spread_score import spread_score
from repro.core.trend_score import trend_score
from repro.experiments.runner import ExperimentConfig, measure_suites


@dataclass(frozen=True)
class AblationResult:
    """All ablation tables.

    Attributes
    ----------
    suite:
        Suite the single-suite ablations ran on.
    pca_variance:
        ``{target: coverage score}``.
    kmeans_restarts:
        ``{n_restarts: (mean cluster score, std over seeds)}``.
    dtw_band:
        ``{band: trend score}`` (None = unconstrained).
    spread_axis:
        ``{axis: spread score}``.
    cdf_mode:
        ``{mode: trend score}``.
    """

    suite: str
    pca_variance: dict
    kmeans_restarts: dict
    dtw_band: dict
    spread_axis: dict
    cdf_mode: dict


def run(config=None, suite="sgxgauge", seeds=(0, 1, 2, 3, 4)):
    """Run every single-suite ablation.

    Returns
    -------
    AblationResult
    """
    config = config if config is not None else ExperimentConfig.full()
    matrix = measure_suites([suite], config)[suite]

    pca = {
        target: coverage_score(matrix, variance=target).value
        for target in (0.80, 0.90, 0.95, 0.98, 1.00)
    }

    restarts = {}
    for n in (1, 2, 8, 16):
        values = [
            cluster_score(matrix, seed=s, n_restarts=n).value
            for s in seeds
        ]
        restarts[n] = (float(np.mean(values)), float(np.std(values)))

    band = {
        label: trend_score(matrix, band=b).value
        for label, b in (("none", None), ("10", 10), ("3", 3), ("1", 1))
    }

    axis = {
        a: spread_score(matrix, axis=a).value
        for a in ("workloads", "events")
    }

    cdf = {
        mode: trend_score(matrix, cdf=mode).value
        for mode in ("quantized", "per_series", "pooled")
    }

    return AblationResult(
        suite=suite,
        pca_variance=pca,
        kmeans_restarts=restarts,
        dtw_band=band,
        spread_axis=axis,
        cdf_mode=cdf,
    )


def render(result):
    lines = [f"design-choice ablations on {result.suite}", ""]
    lines.append("PCA retained-variance target vs CoverageScore:")
    for target, value in result.pca_variance.items():
        marker = "  <- paper" if math.isclose(target, 0.98) else ""
        lines.append(f"  variance={target:.2f}: {value:.4f}{marker}")
    lines.append("")
    lines.append("K-means restarts vs ClusterScore (mean +/- std over seeds):")
    for n, (mean, std) in result.kmeans_restarts.items():
        lines.append(f"  restarts={n:>2}: {mean:.4f} +/- {std:.4f}")
    lines.append("")
    lines.append("DTW Sakoe-Chiba band vs TrendScore:")
    for label, value in result.dtw_band.items():
        marker = "  <- paper (unconstrained)" if label == "none" else ""
        lines.append(f"  band={label:>4}: {value:.1f}{marker}")
    lines.append("")
    lines.append("Eq. 14 axis vs SpreadScore:")
    for a, value in result.spread_axis.items():
        marker = "  <- paper-literal" if a == "workloads" else ""
        lines.append(f"  axis={a}: {value:.4f}{marker}")
    lines.append("")
    lines.append("Series-CDF reading vs TrendScore:")
    for mode, value in result.cdf_mode.items():
        marker = "  <- default" if mode == "quantized" else ""
        lines.append(f"  cdf={mode}: {value:.1f}{marker}")
    return "\n".join(lines)


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
