"""Fig. 5: trend of LLC misses for Nbench and SPEC'17.

The paper's Fig. 5 plots normalized LLC-miss time series for the two
suites: SPEC'17's real applications show visible trends/phases while
Nbench's kernels run flat. ``run`` regenerates the normalized series and
the per-suite ``TScore_{LLC-load-misses}`` (Eq. 7) that summarizes the
contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.normalization import normalize_series_set
from repro.core.trend_score import event_trend_score
from repro.experiments.fig1_normalization import sparkline
from repro.experiments.runner import ExperimentConfig, measure_suites

FIG5_SUITES = ("nbench", "spec17")
FIG5_EVENT = "LLC-load-misses"


@dataclass(frozen=True)
class SuiteTrend:
    """One suite's Fig. 5 panel.

    Attributes
    ----------
    suite:
        Suite name.
    workloads:
        Names aligned with ``normalized``.
    normalized:
        Normalized LLC-miss series per workload.
    tscore:
        Eq. 7 TScore for the event over this suite.
    mean_temporal_variation:
        Mean per-workload peak-to-peak of the normalized series -- a
        direct "how flat" statistic.
    """

    suite: str
    workloads: tuple
    normalized: list
    tscore: float
    mean_temporal_variation: float


@dataclass(frozen=True)
class Fig5Result:
    panels: dict

    def panel(self, suite):
        return self.panels[suite]


def run(config=None, suites=FIG5_SUITES, event=FIG5_EVENT):
    """Regenerate Fig. 5.

    Returns
    -------
    Fig5Result
    """
    config = config if config is not None else ExperimentConfig.full()
    matrices = measure_suites(list(suites), config)
    panels = {}
    for suite in suites:
        matrix = matrices[suite]
        raw = matrix.series[event]
        normalized = normalize_series_set(raw)
        tscore = event_trend_score(raw)
        variation = float(np.mean([np.ptp(s) for s in normalized]))
        panels[suite] = SuiteTrend(
            suite=suite,
            workloads=matrix.workloads,
            normalized=normalized,
            tscore=tscore,
            mean_temporal_variation=variation,
        )
    return Fig5Result(panels=panels)


def render(result, max_rows=8):
    lines = [f"Fig. 5 -- trend of {FIG5_EVENT}", ""]
    for suite, panel in result.panels.items():
        lines.append(
            f"{suite}: TScore={panel.tscore:.1f}, "
            f"mean temporal variation={panel.mean_temporal_variation:.1f}"
        )
        for name, series in list(
            zip(panel.workloads, panel.normalized)
        )[:max_rows]:
            lines.append(f"  {name:<18} |{sparkline(series)}|")
        if len(panel.workloads) > max_rows:
            lines.append(f"  ... ({len(panel.workloads) - max_rows} more)")
        lines.append("")
    return "\n".join(lines)


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
