"""Fig. 6: parameter-space coverage of LMbench vs SPEC'17 in PCA(2).

The paper's Fig. 6 scatters the two suites' workloads in the first two
principal components after *joint* normalization, showing LMbench's
points flung far across the space (its microbenchmarks pin extreme
corners) against SPEC'17's denser cloud. ``run`` regenerates the shared
projection plus both CoverageScores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coverage_score import coverage_scores_jointly
from repro.core.normalization import normalize_matrices_jointly
from repro.experiments.runner import ExperimentConfig, measure_suites
from repro.stats.pca import PCA

FIG6_SUITES = ("lmbench", "spec17")


@dataclass(frozen=True)
class Fig6Result:
    """The shared-projection scatter data plus scores.

    Attributes
    ----------
    suites:
        The two suite names, in plot order.
    points:
        ``{suite: (n, 2) PCA projection}`` in a *common* component basis
        fitted on the union of both suites' normalized rows.
    coverage:
        ``{suite: CoverageScore}`` under joint normalization (Eq. 9-13).
    hull_extent:
        ``{suite: per-axis peak-to-peak extent}`` in the shared space --
        the "how far flung" statistic the scatter shows.
    """

    suites: tuple
    points: dict
    coverage: dict
    hull_extent: dict


def run(config=None, suites=FIG6_SUITES):
    """Regenerate Fig. 6.

    Returns
    -------
    Fig6Result
    """
    config = config if config is not None else ExperimentConfig.full()
    matrices = measure_suites(list(suites), config)
    normalized = normalize_matrices_jointly(
        *[matrices[s] for s in suites]
    )
    union = np.vstack([m.values for m in normalized])
    projection = PCA(n_components=2).fit_transform(union)
    points = {}
    offset = 0
    for suite, m in zip(suites, normalized):
        n = m.values.shape[0]
        points[suite] = projection.transformed[offset : offset + n]
        offset += n
    scores = coverage_scores_jointly(*[matrices[s] for s in suites])
    coverage = {s: r.value for s, r in zip(suites, scores)}
    hull = {s: np.ptp(points[s], axis=0) for s in suites}
    return Fig6Result(
        suites=tuple(suites),
        points=points,
        coverage=coverage,
        hull_extent=hull,
    )


def scatter_text(result, size=25):
    """Joint ASCII scatter: first suite 'o', second '#'."""
    all_pts = np.vstack([result.points[s] for s in result.suites])
    lo = all_pts.min(axis=0)
    span = np.where(np.ptp(all_pts, axis=0) == 0, 1.0,
                    np.ptp(all_pts, axis=0))
    grid = [[" "] * size for _ in range(size)]
    for glyph, suite in zip("o#", result.suites):
        for x, y in result.points[suite]:
            col = min(int((x - lo[0]) / span[0] * (size - 1)), size - 1)
            row = size - 1 - min(
                int((y - lo[1]) / span[1] * (size - 1)), size - 1
            )
            grid[row][col] = glyph
    border = "+" + "-" * size + "+"
    return "\n".join(
        [border] + ["|" + "".join(r) + "|" for r in grid] + [border]
    )


def render(result):
    a, b = result.suites
    lines = [
        f"Fig. 6 -- PCA(2) coverage: {a} ('o') vs {b} ('#')",
        scatter_text(result),
        "",
    ]
    for s in result.suites:
        ext = result.hull_extent[s]
        lines.append(
            f"  {s:<8} coverage={result.coverage[s]:.4f} "
            f"extent=({ext[0]:.2f}, {ext[1]:.2f})"
        )
    return "\n".join(lines)


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
