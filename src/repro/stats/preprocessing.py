"""Normalization and scaling helpers.

Section III-C.1 of the paper is explicit about how PMU counter matrices must
be normalized before the coverage/spread computations:

* Each counter (feature) is min-max normalized to ``[0, 1]``.
* When two suites are compared, the min and max are taken *jointly* over the
  concatenated matrices (Eq. 9-10), so the relative ranges of the raw values
  are preserved across suites.

Constant features (max == min) normalize to 0.5 by convention: they carry no
ordering information, and placing them mid-range avoids biasing the
KS-spread statistic toward either tail.
"""

from __future__ import annotations

import numpy as np

_CONSTANT_FILL = 0.5


def _as_float_matrix(x, name="x"):
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {x.shape}")
    if not np.all(np.isfinite(x)):
        raise ValueError(f"{name} contains non-finite values")
    return x


def minmax_normalize(x, axis=0, bounds=None):
    """Min-max normalize a matrix to ``[0, 1]`` along ``axis``.

    Parameters
    ----------
    x:
        2-D array of shape ``(n_samples, n_features)``.
    axis:
        Axis along which min/max are computed. ``axis=0`` (default)
        normalizes each feature column independently.
    bounds:
        Optional ``(mins, maxs)`` pair overriding the observed extrema --
        used for joint normalization across suites (Eq. 9).

    Returns
    -------
    numpy.ndarray
        Normalized matrix, same shape as ``x``. Columns that are constant
        over the chosen axis are filled with 0.5.
    """
    x = _as_float_matrix(x)
    if bounds is None:
        lo = x.min(axis=axis, keepdims=True)
        hi = x.max(axis=axis, keepdims=True)
    else:
        lo, hi = bounds
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        if axis == 0:
            lo = lo.reshape(1, -1)
            hi = hi.reshape(1, -1)
        else:
            lo = lo.reshape(-1, 1)
            hi = hi.reshape(-1, 1)
        if np.any(hi < lo):
            raise ValueError("bounds must satisfy max >= min")
    span = hi - lo
    constant = span == 0
    safe_span = np.where(constant, 1.0, span)
    out = (x - lo) / safe_span
    out = np.where(np.broadcast_to(constant, out.shape), _CONSTANT_FILL, out)
    return out


def joint_minmax_normalize(*matrices):
    """Jointly min-max normalize several matrices (Eq. 9-10 of the paper).

    All matrices must share the feature axis (same number of columns). The
    per-feature min and max are computed over the row-wise concatenation of
    every matrix, then each matrix is normalized with those shared bounds.

    Returns
    -------
    list[numpy.ndarray]
        The normalized matrices, in input order.

    Notes
    -----
    The paper writes the counter matrices as ``m x n`` (events as rows); we
    follow the numpy/sklearn convention of ``n x m`` (workloads as rows,
    events as columns) throughout the code base. Eq. 9's column-wise
    max/min over the concatenation ``(X1 | X2)`` becomes a row-wise
    concatenation here.
    """
    if not matrices:
        raise ValueError("need at least one matrix")
    mats = [_as_float_matrix(m, f"matrices[{i}]") for i, m in enumerate(matrices)]
    n_features = mats[0].shape[1]
    for i, m in enumerate(mats):
        if m.shape[1] != n_features:
            raise ValueError(
                f"matrices[{i}] has {m.shape[1]} features, expected {n_features}"
            )
    stacked = np.vstack(mats)
    lo = stacked.min(axis=0)
    hi = stacked.max(axis=0)
    return [minmax_normalize(m, axis=0, bounds=(lo, hi)) for m in mats]


def zscore_normalize(x, axis=0, ddof=0):
    """Standardize a matrix to zero mean and unit variance along ``axis``.

    Constant columns are mapped to zero. Used before PCA so that counters
    with large absolute magnitudes (e.g. cpu-cycles) do not dominate the
    principal components.
    """
    x = _as_float_matrix(x)
    mean = x.mean(axis=axis, keepdims=True)
    std = x.std(axis=axis, ddof=ddof, keepdims=True)
    safe_std = np.where(std == 0, 1.0, std)
    out = (x - mean) / safe_std
    return np.where(np.broadcast_to(std == 0, out.shape), 0.0, out)


def clip_unit_interval(x):
    """Clip values into ``[0, 1]``.

    Applied after normalizing one suite with bounds derived from another
    (e.g. scoring a subset against full-suite bounds), where values can
    land slightly outside the unit interval.
    """
    return np.clip(np.asarray(x, dtype=float), 0.0, 1.0)
