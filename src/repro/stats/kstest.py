"""Kolmogorov-Smirnov tests.

The SpreadScore (Section III-D, Eq. 14) runs a one-sample KS test of each
normalized counter column against the uniform distribution ``U(0, 1)``.
The paper reads the KS statistic (D-value) directly: values in ``[0, 0.5]``
indicate the points are at least weakly uniform, and *lower is better*.

Both the exact one-sample statistic against U(0,1) (no Monte-Carlo sample
needed -- the uniform CDF is ``F(x) = x``) and the empirical two-sample
variant used in Eq. 14's sampled formulation are provided. The asymptotic
p-value uses the Kolmogorov distribution series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class KSResult:
    """KS test outcome.

    Attributes
    ----------
    statistic:
        The D-value: supremum distance between the two CDFs.
    pvalue:
        Asymptotic p-value (Kolmogorov distribution).
    n_effective:
        Effective sample size used in the p-value computation.
    """

    statistic: float
    pvalue: float
    n_effective: float

    def weakly_uniform(self, threshold=0.5):
        """The paper's reading: D in ``[0, threshold]`` ~ weakly uniform."""
        return self.statistic <= threshold


def _kolmogorov_sf(x):
    """Survival function of the Kolmogorov distribution.

    ``Q(x) = 2 * sum_{k>=1} (-1)^(k-1) exp(-2 k^2 x^2)``; converges in a
    handful of terms for the arguments that arise in practice.
    """
    if x <= 0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = (-1) ** (k - 1) * math.exp(-2.0 * (k * x) ** 2)
        total += term
        if abs(term) < 1e-12:
            break
    return float(min(max(2.0 * total, 0.0), 1.0))


def kolmogorov_sf_batch(x):
    """Vectorized :func:`_kolmogorov_sf` over an array of arguments.

    Bit-identical to the scalar loop per element: the same 100-term
    alternating series with the same add-then-check-1e-12 stopping rule,
    applied per element via an ``active`` mask (an element whose term has
    converged stops receiving additions, exactly like the scalar break).
    Partial sums are strictly positive (the first term dominates), so the
    final clamp never has a signed-zero tie to resolve. The exponential
    itself is ``math.exp`` per element -- ``np.exp`` differs from it at
    ULP level on this platform, and bit-identity outranks shaving the
    (already convergence-bounded) series loop.
    """
    x = np.asarray(x, dtype=float)
    total = np.zeros(x.shape)
    active = x > 0
    for k in range(1, 101):
        if not active.any():
            break
        exponents = -2.0 * (k * x) ** 2
        term = (-1.0) ** (k - 1) * np.fromiter(
            (math.exp(e) for e in np.ravel(exponents)),
            dtype=float,
            count=x.size,
        ).reshape(x.shape)
        total = total + np.where(active, term, 0.0)
        active = active & (np.abs(term) >= 1e-12)
    out = np.minimum(np.maximum(2.0 * total, 0.0), 1.0)
    return np.where(x > 0, out, 1.0)


def ks_statistic_uniform_columns(x):
    """Column-batched :func:`ks_statistic_uniform` over a 2-D matrix.

    One sort along axis 0 plus broadcast ``d_plus`` / ``d_minus`` maxima
    replace the per-column Python loop the SpreadScore otherwise pays.
    Bit-identical to ``[ks_statistic_uniform(x[:, j]) for j in columns]``:
    clip, sort, the grid subtraction, and the reductions are all
    elementwise or per-column, and the final three-way combine is the
    reference's own Python ``max`` expression per column.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ValueError("expected a 2-D (samples, columns) matrix")
    n = x.shape[0]
    if n == 0:
        raise ValueError("values is empty")
    v = np.sort(np.clip(x, 0.0, 1.0), axis=0)
    grid = (np.arange(1, n + 1) / n)[:, None]
    d_plus = np.max(grid - v, axis=0)
    d_minus = np.max(v - (grid - 1.0 / n), axis=0)
    return np.array(
        [float(max(dp, dm, 0.0)) for dp, dm in zip(d_plus, d_minus)]
    )


def ks_statistic_uniform(values):
    """Exact one-sample KS D-value of ``values`` against U(0, 1).

    Values are clipped into [0, 1] first (normalized counters can carry
    tiny numerical overshoot). For sorted samples ``x_(1..n)`` the statistic
    is ``max_i max(i/n - x_(i), x_(i) - (i-1)/n)``.
    """
    v = np.sort(np.clip(np.asarray(values, dtype=float).ravel(), 0.0, 1.0))
    n = v.size
    if n == 0:
        raise ValueError("values is empty")
    grid = np.arange(1, n + 1) / n
    d_plus = np.max(grid - v)
    d_minus = np.max(v - (grid - 1.0 / n))
    return float(max(d_plus, d_minus, 0.0))


def ks_test_uniform(values):
    """One-sample KS test against U(0, 1) with asymptotic p-value."""
    d = ks_statistic_uniform(values)
    v = np.asarray(values, dtype=float).ravel()
    n = v.size
    p = _kolmogorov_sf(d * (math.sqrt(n) + 0.12 + 0.11 / math.sqrt(n)))
    return KSResult(statistic=d, pvalue=p, n_effective=float(n))


def ks_two_sample(a, b):
    """Two-sample KS test: D-value between the empirical CDFs of two
    samples, with the asymptotic p-value.

    This matches Eq. 14's literal formulation where the column is compared
    against ``m`` draws from U(0, 1); the experiments use the exact
    one-sample form by default (deterministic, no sampling noise) with the
    two-sample form available as an ablation.
    """
    a = np.sort(np.asarray(a, dtype=float).ravel())
    b = np.sort(np.asarray(b, dtype=float).ravel())
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    d = float(np.max(np.abs(cdf_a - cdf_b)))
    n_eff = a.size * b.size / (a.size + b.size)
    p = _kolmogorov_sf(
        d * (math.sqrt(n_eff) + 0.12 + 0.11 / math.sqrt(n_eff))
    )
    return KSResult(statistic=d, pvalue=p, n_effective=float(n_eff))
