"""Pluggable compute backends for the DTW / KS hot paths.

The scoring pipeline funnels its two numerical hot loops -- batched DTW
pair distances (TrendScore, Section III-B) and per-column one-sample KS
statistics (SpreadScore, Section III-D) -- through a
:class:`ComputeBackend` picked by name:

* ``reference`` -- the per-pair / per-column fills in
  :mod:`repro.stats.dtw` and :mod:`repro.stats.kstest`, kept as the
  bit-identity oracle.
* ``vectorized`` -- the batched anti-diagonal wavefronts
  (:func:`repro.stats.dtw.banded_pair_distances`,
  :func:`repro.stats.dtw.bucketed_pair_distances`) and the column-batched
  KS kernel (:func:`repro.stats.kstest.ks_statistic_uniform_columns`).

Backends are a *performance* knob, never a numerical one: every kernel a
backend may dispatch to is bit-identical to its reference twin (the IEEE
``min``-exactness argument is documented in :mod:`repro.stats.dtw`), so
cache keys stay backend-free and ``repro qa --backend vectorized``
cross-checks full scorecards bit-for-bit on every execution variant.

Selection precedence is explicit argument > ``$REPRO_BACKEND`` >
``reference`` (see :func:`resolve_backend`); the environment read lives
only there. The registry is a fixed mapping -- no mutation hooks -- and
every function in this module is top-level and effect-free, which the
deep lint's backend-purity rule enforces (attribute calls through a
backend object are opaque to the call graph, so the whole module is held
to the worker-safe standard wholesale).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.stats.dtw import (
    banded_pair_distances,
    batched_pair_distances,
    bucketed_pair_distances,
    dtw_distance,
)
from repro.stats.kstest import (
    ks_statistic_uniform,
    ks_statistic_uniform_columns,
)

DEFAULT_BACKEND = "reference"

# Environment variable consulted by resolve_backend when no explicit
# backend is given (CLI flags read it too, so `repro qa` subprocesses
# inherit the selection).
ENV_VAR = "REPRO_BACKEND"


@dataclass(frozen=True)
class ComputeBackend:
    """A named bundle of hot-path kernels.

    Attributes
    ----------
    name:
        Registry key; recorded in run manifests and health reports.
    pair_distances:
        ``(arrays, idx_i, idx_j, band) -> (pairs,) float array`` of DTW
        distances for the selected pairs of validated 1-D series.
    ks_columns:
        ``(matrix) -> (columns,) float array`` of one-sample KS D-values
        against U(0, 1), one per column of a 2-D ``(samples, columns)``
        matrix.
    """

    name: str
    pair_distances: Callable
    ks_columns: Callable


def _aligned_fast_path(arrays, band):
    """True when the pair set can use the equal-length unbanded batch."""
    if band is not None or not arrays:
        return False
    length = arrays[0].shape[0]
    return all(
        a.ndim == 1 and a.shape[0] == length for a in arrays
    )


def reference_pair_distances(arrays, idx_i, idx_j, band=None):
    """Oracle DTW pair distances.

    Matches what the engine historically computed: the equal-length
    unbanded case uses :func:`batched_pair_distances` (the PR-2 fast
    path, itself bit-identical to per-pair), everything else one
    :func:`dtw_distance` per pair.
    """
    if _aligned_fast_path(arrays, band):
        return batched_pair_distances(np.vstack(arrays), idx_i, idx_j)
    return np.array(
        [
            dtw_distance(arrays[i], arrays[j], band=band)
            for i, j in zip(idx_i, idx_j)
        ]
    )


def vectorized_pair_distances(arrays, idx_i, idx_j, band=None):
    """Batched DTW pair distances; bit-identical to the reference.

    Dispatch: equal-length unbanded pairs share the reference's batch
    kernel; equal-length banded pairs run the banded wavefront; any
    other 1-D mix runs shape-bucketed batches. Multivariate (2-D)
    series fall back to the per-pair reference -- the batched kernels
    are univariate and silently flattening would change the cost matrix.
    """
    if _aligned_fast_path(arrays, band):
        return batched_pair_distances(np.vstack(arrays), idx_i, idx_j)
    if any(a.ndim != 1 for a in arrays):
        return np.array(
            [
                dtw_distance(arrays[i], arrays[j], band=band)
                for i, j in zip(idx_i, idx_j)
            ]
        )
    lengths = {a.shape[0] for a in arrays}
    if band is not None and len(lengths) == 1:
        return banded_pair_distances(np.vstack(arrays), idx_i, idx_j, band)
    return bucketed_pair_distances(arrays, idx_i, idx_j, band=band)


def reference_ks_columns(x):
    """Oracle per-column KS D-values: one reference call per column."""
    x = np.asarray(x, dtype=float)
    return np.array(
        [ks_statistic_uniform(x[:, j]) for j in range(x.shape[1])]
    )


def vectorized_ks_columns(x):
    """Column-batched KS D-values; bit-identical to the reference."""
    return ks_statistic_uniform_columns(x)


_BACKENDS = {
    "reference": ComputeBackend(
        name="reference",
        pair_distances=reference_pair_distances,
        ks_columns=reference_ks_columns,
    ),
    "vectorized": ComputeBackend(
        name="vectorized",
        pair_distances=vectorized_pair_distances,
        ks_columns=vectorized_ks_columns,
    ),
}


def available_backends():
    """Sorted tuple of registered backend names."""
    return tuple(sorted(_BACKENDS))


def get_backend(name):
    """Look up a backend by name (a ComputeBackend passes through)."""
    if isinstance(name, ComputeBackend):
        return name
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of "
            f"{available_backends()}"
        ) from None


def resolve_backend(name=None):
    """Resolve the active backend: explicit > $REPRO_BACKEND > reference.

    The only place the environment is consulted, so the selection is
    auditable and the rest of the module stays effect-free apart from
    this one sanctioned read.
    """
    if name is not None:
        return get_backend(name)
    return get_backend(os.environ.get(ENV_VAR) or DEFAULT_BACKEND)
