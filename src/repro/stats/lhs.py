"""Latin hypercube sampling (LHS).

Section IV-C builds benchmark-suite subsets with LHS [33]: each of the
``M`` dimensions (one per PMU counter) is divided into as many equal
regions as points requested, and exactly one point is sampled per region
per dimension. This stratification guarantees marginal coverage that plain
uniform sampling does not.

Two variants:

* :func:`latin_hypercube` -- classic LHS (random permutations per
  dimension, random jitter within each stratum);
* :func:`maximin_latin_hypercube` -- draws several LHS designs and keeps
  the one maximizing the minimum pairwise point distance, improving the
  space-filling property (used by the subset generator so the selected
  anchor points, and hence the chosen workloads, are well spread).
"""

from __future__ import annotations

import numpy as np

from repro.stats.distance import pairwise_distances


def _check_args(n_samples, n_dims):
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if n_dims < 1:
        raise ValueError(f"n_dims must be >= 1, got {n_dims}")


def latin_hypercube(n_samples, n_dims, rng=0, centered=False):
    """Draw an LHS design in the unit hypercube.

    Parameters
    ----------
    n_samples:
        Number of points (== number of strata per dimension).
    n_dims:
        Dimensionality of the design.
    rng:
        :class:`numpy.random.Generator` or seed.
    centered:
        If ``True``, place each point at the centre of its stratum instead
        of jittering uniformly inside it (deterministic given the
        permutations).

    Returns
    -------
    numpy.ndarray
        Design matrix of shape ``(n_samples, n_dims)`` with every column a
        permutation of the stratified values -- i.e. exactly one point per
        ``1/n_samples``-wide interval in every dimension.
    """
    _check_args(n_samples, n_dims)
    rng = np.random.default_rng(rng)
    out = np.empty((n_samples, n_dims))
    base = np.arange(n_samples, dtype=float)
    for d in range(n_dims):
        perm = rng.permutation(n_samples)
        if centered:
            offsets = 0.5
        else:
            offsets = rng.uniform(size=n_samples)
        out[:, d] = (base[perm] + offsets) / n_samples
    return out


def maximin_latin_hypercube(n_samples, n_dims, rng=0, n_candidates=32,
                            centered=False):
    """LHS design maximizing the minimum pairwise distance.

    Draws ``n_candidates`` independent LHS designs and returns the one with
    the largest minimum inter-point distance. With ``n_samples == 1`` the
    criterion is vacuous and a single draw is returned.
    """
    _check_args(n_samples, n_dims)
    if n_candidates < 1:
        raise ValueError(f"n_candidates must be >= 1, got {n_candidates}")
    rng = np.random.default_rng(rng)
    if n_samples == 1:
        return latin_hypercube(1, n_dims, rng=rng, centered=centered)

    best = None
    best_score = -np.inf
    for _ in range(n_candidates):
        design = latin_hypercube(n_samples, n_dims, rng=rng, centered=centered)
        d = pairwise_distances(design)
        np.fill_diagonal(d, np.inf)
        score = float(d.min())
        if score > best_score:
            best_score = score
            best = design
    return best


def lhs_strata(n_samples):
    """Stratum boundaries for an ``n_samples``-point LHS in one dimension.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_samples + 1,)``: ``[0, 1/n, 2/n, ..., 1]``.
    """
    _check_args(n_samples, 1)
    return np.linspace(0.0, 1.0, n_samples + 1)


def is_latin_hypercube(design, atol=1e-12):
    """Check the LHS invariant: one point per stratum in every dimension."""
    design = np.asarray(design, dtype=float)
    if design.ndim != 2:
        raise ValueError(f"design must be 2-D, got shape {design.shape}")
    n = design.shape[0]
    if np.any(design < -atol) or np.any(design > 1 + atol):
        return False
    strata = np.floor(np.clip(design, 0, np.nextafter(1, 0)) * n).astype(int)
    for d in range(design.shape[1]):
        if np.unique(strata[:, d]).size != n:
            return False
    return True
