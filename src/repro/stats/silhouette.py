"""Silhouette coefficients (Eq. 1-5 of the paper).

For a point ``p`` in cluster ``C_i``:

* intra-cluster dissimilarity ``eta(p)`` (Eq. 1): mean distance from ``p``
  to the other members of its own cluster;
* inter-cluster dissimilarity ``lambda(p)`` (Eq. 2): minimum over other
  clusters of the mean distance from ``p`` to that cluster's members;
* silhouette ``S(p) = (lambda - eta) / max(lambda, eta)`` (Eq. 3), defined
  as 0 when only one cluster exists.

The paper then averages per cluster (Eq. 4) and over clusters (Eq. 5).
Note this differs from the more common convention of averaging over all
points directly: Eq. 5 gives every *cluster* equal weight regardless of its
size. Both variants are provided; the ClusterScore uses the paper's.
"""

from __future__ import annotations

import numpy as np

from repro.stats.distance import pairwise_distances


def _validate_labels(x, labels):
    x = np.asarray(x, dtype=float)
    labels = np.asarray(labels)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    if labels.shape != (x.shape[0],):
        raise ValueError(
            f"labels shape {labels.shape} does not match {x.shape[0]} samples"
        )
    return x, labels


def silhouette_samples(x, labels, precomputed_distances=None):
    """Per-point silhouette values ``S(p)`` (Eq. 3).

    Parameters
    ----------
    x:
        Data matrix ``(n_samples, n_features)``.
    labels:
        Integer cluster assignment per row.
    precomputed_distances:
        Optional pairwise distance matrix to reuse across calls (the
        ClusterScore sweeps many ``k`` values over the same points).

    Returns
    -------
    numpy.ndarray
        Silhouette value per sample in ``[-1, 1]``. Samples in singleton
        clusters get 0 (their ``eta`` is undefined; Rousseeuw's convention).
    """
    x, labels = _validate_labels(x, labels)
    unique = np.unique(labels)
    n = x.shape[0]
    if unique.size <= 1:
        return np.zeros(n)

    if precomputed_distances is None:
        dmat = pairwise_distances(x)
    else:
        dmat = np.asarray(precomputed_distances, dtype=float)
        if dmat.shape != (n, n):
            raise ValueError(
                f"precomputed distance matrix has shape {dmat.shape}, "
                f"expected {(n, n)}"
            )

    # Sum of distances from every point to each cluster, shape (n, k).
    masks = np.stack([labels == c for c in unique], axis=1).astype(float)
    sums = dmat @ masks
    sizes = masks.sum(axis=0)

    own_col = np.searchsorted(unique, labels)
    own_size = sizes[own_col]
    s = np.zeros(n)

    non_singleton = own_size > 1
    eta = np.zeros(n)
    eta[non_singleton] = (
        sums[np.arange(n), own_col][non_singleton] / (own_size[non_singleton] - 1)
    )

    # Mean distance to every *other* cluster; mask own cluster with +inf.
    means = sums / sizes[None, :]
    means[np.arange(n), own_col] = np.inf
    lam = means.min(axis=1)

    denom = np.maximum(lam, eta)
    valid = non_singleton & (denom > 0)
    s[valid] = (lam[valid] - eta[valid]) / denom[valid]
    return s


def silhouette_per_cluster(x, labels, precomputed_distances=None):
    """Mean silhouette per cluster ``S(C_i)`` (Eq. 4).

    Returns
    -------
    dict[int, float]
        Cluster label -> mean member silhouette.
    """
    x, labels = _validate_labels(x, labels)
    values = silhouette_samples(x, labels, precomputed_distances)
    return {
        int(c): float(values[labels == c].mean()) for c in np.unique(labels)
    }


def silhouette_score(x, labels, precomputed_distances=None, per_cluster=True):
    """Aggregate silhouette score.

    Parameters
    ----------
    per_cluster:
        ``True`` (default) follows the paper's Eq. 5 -- the unweighted mean
        of per-cluster means. ``False`` gives the conventional mean over all
        samples.

    Returns
    -------
    float
        Score in ``[-1, 1]``; 0 when fewer than two clusters exist.
    """
    x, labels = _validate_labels(x, labels)
    if np.unique(labels).size <= 1:
        return 0.0
    if per_cluster:
        cluster_means = silhouette_per_cluster(x, labels, precomputed_distances)
        return float(np.mean(list(cluster_means.values())))
    values = silhouette_samples(x, labels, precomputed_distances)
    return float(values.mean())
