"""Vector and pairwise distance computations.

The Perspector metrics use Euclidean distance throughout (Eq. 1-2 of the
paper define the silhouette dissimilarities in terms of ``dis(p, p')``, the
Euclidean distance).  The pairwise helpers here are shared by the K-means,
silhouette, and hierarchical-clustering implementations.
"""

from __future__ import annotations

import numpy as np

_SUPPORTED_METRICS = ("euclidean", "sqeuclidean", "manhattan", "chebyshev")

# Row-axis chunk for the manhattan/chebyshev broadcast in cdist: caps the
# materialized (chunk, m, d) tensor instead of the full (n, m, d) one.
DEFAULT_ROW_CHUNK = 256


def euclidean(a, b):
    """Euclidean distance between two vectors.

    Parameters
    ----------
    a, b:
        Array-likes of the same shape.

    Returns
    -------
    float
        ``sqrt(sum((a - b) ** 2))``.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(
            f"shape mismatch: {a.shape} vs {b.shape}"
        )
    return float(np.sqrt(np.sum((a - b) ** 2)))


def manhattan(a, b):
    """Manhattan (L1) distance between two vectors."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(
            f"shape mismatch: {a.shape} vs {b.shape}"
        )
    return float(np.sum(np.abs(a - b)))


def _validate_matrix(x, name="x"):
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {x.shape}")
    if x.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one row")
    if not np.all(np.isfinite(x)):
        raise ValueError(f"{name} contains non-finite values")
    return x


def cdist(a, b, metric="euclidean", row_chunk=DEFAULT_ROW_CHUNK):
    """Pairwise distances between the rows of two matrices.

    Parameters
    ----------
    a:
        Matrix of shape ``(n, d)``.
    b:
        Matrix of shape ``(m, d)``.
    metric:
        One of ``euclidean``, ``sqeuclidean``, ``manhattan``, ``chebyshev``.
    row_chunk:
        For ``manhattan`` / ``chebyshev``, the maximum rows of ``a``
        whose ``(rows, m, d)`` broadcast tensor is materialized at once;
        ``None`` disables chunking. Each output row depends only on its
        own row of ``a`` and the reduction runs over the same contiguous
        last axis either way, so any chunk size is bitwise-identical.

    Returns
    -------
    numpy.ndarray
        Distance matrix of shape ``(n, m)``.
    """
    a = _validate_matrix(a, "a")
    b = _validate_matrix(b, "b")
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}"
        )
    if metric not in _SUPPORTED_METRICS:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of {_SUPPORTED_METRICS}"
        )

    if metric in ("euclidean", "sqeuclidean"):
        # (a - b)^2 = a^2 + b^2 - 2ab, computed without forming the full
        # (n, m, d) broadcast tensor.
        aa = np.sum(a * a, axis=1)[:, None]
        bb = np.sum(b * b, axis=1)[None, :]
        sq = aa + bb - 2.0 * (a @ b.T)
        np.maximum(sq, 0.0, out=sq)  # guard tiny negatives from rounding
        if metric == "sqeuclidean":
            return sq
        return np.sqrt(sq)

    reduce = np.sum if metric == "manhattan" else np.max  # else chebyshev
    n = a.shape[0]
    if row_chunk is None or row_chunk >= n:
        return reduce(np.abs(a[:, None, :] - b[None, :, :]), axis=2)
    out = np.empty((n, b.shape[0]))
    step = max(int(row_chunk), 1)
    for start in range(0, n, step):
        stop = min(start + step, n)
        out[start:stop] = reduce(
            np.abs(a[start:stop, None, :] - b[None, :, :]), axis=2
        )
    return out


def pairwise_distances(x, metric="euclidean"):
    """Symmetric pairwise distance matrix of the rows of ``x``.

    Equivalent to ``cdist(x, x, metric)`` but guarantees an exactly zero
    diagonal and exact symmetry, which the silhouette computation relies on.
    """
    x = _validate_matrix(x)
    d = cdist(x, x, metric=metric)
    d = 0.5 * (d + d.T)
    np.fill_diagonal(d, 0.0)
    return d
