"""K-means clustering.

The ClusterScore (Section III-A of the paper) clusters the normalized
counter matrix with K-means [24] and grades the clustering with the
silhouette score. This module provides the clustering half:

* k-means++ seeding (D^2-weighted sampling), the standard defence against
  poor random initial centroids;
* Lloyd's iterations with an explicit convergence tolerance;
* multiple restarts keeping the lowest-inertia solution, so the downstream
  silhouette values are stable across runs;
* deterministic behaviour under an explicit seed, which the experiment
  harness relies on.

Empty clusters -- likely here because benchmark-suite matrices are tiny
(tens of rows) -- are repaired by reseeding the empty centroid at the point
farthest from its assigned centroid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.stats.distance import cdist


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a K-means run.

    Attributes
    ----------
    labels:
        Cluster index per input row, shape ``(n_samples,)``.
    centroids:
        Final centroids, shape ``(k, n_features)``.
    inertia:
        Sum of squared distances of samples to their assigned centroid.
    n_iter:
        Lloyd iterations executed by the best restart.
    converged:
        Whether the best restart met the tolerance before ``max_iter``.
    """

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    n_iter: int
    converged: bool

    @property
    def k(self):
        """Number of clusters."""
        return int(self.centroids.shape[0])

    def cluster_sizes(self):
        """Number of points assigned to each cluster, shape ``(k,)``."""
        return np.bincount(self.labels, minlength=self.k)


def _plus_plus_init(x, k, rng):
    """k-means++ seeding: D^2-weighted centroid selection."""
    n = x.shape[0]
    centroids = np.empty((k, x.shape[1]), dtype=float)
    first = int(rng.integers(n))
    centroids[0] = x[first]
    closest_sq = cdist(x, centroids[:1], metric="sqeuclidean")[:, 0]
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All points coincide with chosen centroids; pick uniformly.
            idx = int(rng.integers(n))
        else:
            probs = closest_sq / total
            idx = int(rng.choice(n, p=probs))
        centroids[i] = x[idx]
        new_sq = cdist(x, centroids[i : i + 1], metric="sqeuclidean")[:, 0]
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centroids


def _lloyd(x, centroids, max_iter, tol):
    """Run Lloyd's algorithm from the given centroids."""
    k = centroids.shape[0]
    labels = np.zeros(x.shape[0], dtype=int)
    converged = False
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        dists = cdist(x, centroids, metric="sqeuclidean")
        labels = np.argmin(dists, axis=1)
        new_centroids = np.empty_like(centroids)
        for j in range(k):
            members = x[labels == j]
            if members.shape[0] == 0:
                # Repair: move the empty centroid to the point currently
                # worst-served by its centroid.
                worst = int(np.argmax(np.min(dists, axis=1)))
                new_centroids[j] = x[worst]
            else:
                new_centroids[j] = members.mean(axis=0)
        shift = float(np.sqrt(np.sum((new_centroids - centroids) ** 2)))
        centroids = new_centroids
        if shift <= tol:
            converged = True
            break
    dists = cdist(x, centroids, metric="sqeuclidean")
    labels = np.argmin(dists, axis=1)
    inertia = float(np.sum(dists[np.arange(x.shape[0]), labels]))
    return labels, centroids, inertia, n_iter, converged


@dataclass
class KMeans:
    """Configurable K-means estimator.

    Parameters
    ----------
    k:
        Number of clusters. Must satisfy ``1 <= k <= n_samples``.
    n_restarts:
        Independent k-means++ initializations; the lowest-inertia solution
        wins.
    max_iter:
        Iteration cap per restart.
    tol:
        Centroid-shift (Frobenius) convergence threshold.
    seed:
        Seed for the internal :class:`numpy.random.Generator`. Defaults
        to 0 so an unconfigured KMeans is still deterministic.
    """

    k: int
    n_restarts: int = 8
    max_iter: int = 300
    tol: float = 1e-9
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False, default=None)

    def __post_init__(self):
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.n_restarts < 1:
            raise ValueError(f"n_restarts must be >= 1, got {self.n_restarts}")
        self._rng = np.random.default_rng(self.seed)

    def fit(self, x):
        """Cluster the rows of ``x``.

        Returns
        -------
        KMeansResult
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        n = x.shape[0]
        if n < self.k:
            raise ValueError(f"cannot form {self.k} clusters from {n} samples")
        if self.k == 1:
            centroid = x.mean(axis=0, keepdims=True)
            inertia = float(np.sum((x - centroid) ** 2))
            return KMeansResult(
                labels=np.zeros(n, dtype=int),
                centroids=centroid,
                inertia=inertia,
                n_iter=0,
                converged=True,
            )

        best = None
        for _ in range(self.n_restarts):
            init = _plus_plus_init(x, self.k, self._rng)
            labels, centroids, inertia, n_iter, converged = _lloyd(
                x, init, self.max_iter, self.tol
            )
            if best is None or inertia < best.inertia:
                best = KMeansResult(
                    labels=labels,
                    centroids=centroids,
                    inertia=inertia,
                    n_iter=n_iter,
                    converged=converged,
                )
        return best


def kmeans(x, k, seed=0, n_restarts=8):
    """Functional shorthand for ``KMeans(k, ...).fit(x)``."""
    return KMeans(k=k, seed=seed, n_restarts=n_restarts).fit(x)
