"""Agglomerative (hierarchical) clustering.

Prior work on benchmark-suite redundancy (Table I of the paper:
Phansalkar et al. [17, 19], Limaye & Adegbija [15], Panda et al. [16, 18])
reduces the counter matrix with PCA and then clusters the principal
components with *hierarchical* clustering. Perspector argues K-means +
silhouette is the better fulcrum; this module implements the prior-work
machinery so the baseline methodology can be reproduced and compared.

The implementation is the standard stored-distance agglomerative algorithm
with Lance-Williams updates, supporting single, complete, average (UPGMA),
and Ward linkage. It produces a scipy-style ``(n-1, 4)`` linkage matrix
(merged cluster ids, merge distance, new cluster size) plus helpers to cut
the dendrogram into a requested number of flat clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.distance import pairwise_distances

_LINKAGES = ("single", "complete", "average", "ward")


def _lance_williams(linkage, d_ik, d_jk, d_ij, n_i, n_j, n_k):
    """Distance from merged cluster (i u j) to cluster k."""
    if linkage == "single":
        return min(d_ik, d_jk)
    if linkage == "complete":
        return max(d_ik, d_jk)
    if linkage == "average":
        return (n_i * d_ik + n_j * d_jk) / (n_i + n_j)
    # Ward (on Euclidean distances).
    total = n_i + n_j + n_k
    return np.sqrt(
        ((n_i + n_k) * d_ik ** 2 + (n_j + n_k) * d_jk ** 2 - n_k * d_ij ** 2)
        / total
    )


def linkage_matrix(x, linkage="average", precomputed_distances=None):
    """Agglomerative clustering of the rows of ``x``.

    Parameters
    ----------
    x:
        Data matrix ``(n_samples, n_features)``.
    linkage:
        ``single`` | ``complete`` | ``average`` | ``ward``.
    precomputed_distances:
        Optional pairwise distance matrix (Euclidean assumed for Ward).

    Returns
    -------
    numpy.ndarray
        scipy-compatible linkage matrix of shape ``(n - 1, 4)``. Row ``t``
        records the ``t``-th merge: cluster ids (original points are
        ``0..n-1``, merges create ``n+t``), the merge distance, and the
        size of the new cluster.
    """
    if linkage not in _LINKAGES:
        raise ValueError(f"unknown linkage {linkage!r}; expected {_LINKAGES}")
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    n = x.shape[0]
    if n < 2:
        raise ValueError("need at least two samples to cluster")

    if precomputed_distances is None:
        dist = pairwise_distances(x)
    else:
        dist = np.array(precomputed_distances, dtype=float)
        if dist.shape != (n, n):
            raise ValueError(
                f"distance matrix shape {dist.shape} != {(n, n)}"
            )
    dist = dist.copy()
    np.fill_diagonal(dist, np.inf)

    active = list(range(n))           # positions still live in `dist`
    cluster_id = list(range(n))       # dendrogram id at each position
    sizes = {i: 1 for i in range(n)}  # id -> member count
    merges = np.zeros((n - 1, 4))

    for t in range(n - 1):
        sub = dist[np.ix_(active, active)]
        flat = int(np.argmin(sub))
        pi, pj = divmod(flat, len(active))
        if pi > pj:
            pi, pj = pj, pi
        i_pos, j_pos = active[pi], active[pj]
        ci, cj = cluster_id[i_pos], cluster_id[j_pos]
        d_ij = dist[i_pos, j_pos]
        new_id = n + t
        new_size = sizes[ci] + sizes[cj]
        merges[t] = (min(ci, cj), max(ci, cj), d_ij, new_size)

        # Update distances from the merged cluster (kept at i_pos).
        for pk in active:
            if pk in (i_pos, j_pos):
                continue
            ck = cluster_id[pk]
            updated = _lance_williams(
                linkage,
                dist[i_pos, pk],
                dist[j_pos, pk],
                d_ij,
                sizes[ci],
                sizes[cj],
                sizes[ck],
            )
            dist[i_pos, pk] = updated
            dist[pk, i_pos] = updated
        active.remove(j_pos)
        cluster_id[i_pos] = new_id
        sizes[new_id] = new_size
    return merges


def fcluster_by_count(merges, n_clusters):
    """Cut a linkage matrix into ``n_clusters`` flat clusters.

    Undoes the last ``n_clusters - 1`` merges and labels the leaves by
    their remaining component. Labels are contiguous integers starting at
    0, ordered by smallest member index.
    """
    merges = np.asarray(merges, dtype=float)
    n = merges.shape[0] + 1
    if not (1 <= n_clusters <= n):
        raise ValueError(
            f"n_clusters must be in [1, {n}], got {n_clusters}"
        )
    # Union-find over the first (n - n_clusters) merges.
    parent = list(range(n + merges.shape[0]))

    def find(a):
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for t in range(n - n_clusters):
        a, b = int(merges[t, 0]), int(merges[t, 1])
        new = n + t
        parent[find(a)] = new
        parent[find(b)] = new

    roots = {}
    labels = np.empty(n, dtype=int)
    for leaf in range(n):
        r = find(leaf)
        if r not in roots:
            roots[r] = len(roots)
        labels[leaf] = roots[r]
    return labels


@dataclass
class HierarchicalClustering:
    """Estimator-style wrapper around :func:`linkage_matrix`.

    Parameters
    ----------
    n_clusters:
        Number of flat clusters to cut the dendrogram into.
    linkage:
        Linkage criterion (see :func:`linkage_matrix`).
    """

    n_clusters: int
    linkage: str = "average"

    def fit_predict(self, x):
        """Cluster ``x`` and return integer labels per row."""
        merges = linkage_matrix(x, linkage=self.linkage)
        return fcluster_by_count(merges, self.n_clusters)
