"""Principal component analysis via singular value decomposition.

The CoverageScore (Section III-C.2) reduces the jointly normalized counter
matrix with PCA, retaining enough components to preserve 98% of the
variance (Eq. 11-12), then scores the suite by the mean variance of the
retained components (Eq. 13).

This implementation centres the data, takes the thin SVD, and exposes both
a fixed component count and a retained-variance-ratio cutoff. Components
use the deterministic sign convention (largest-magnitude loading positive)
so results are reproducible across platforms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PCAResult:
    """Fitted PCA model plus the transformed data.

    Attributes
    ----------
    transformed:
        Projected data, shape ``(n_samples, n_components)``.
    components:
        Principal axes (rows), shape ``(n_components, n_features)``.
    explained_variance:
        Variance of the data along each retained component.
    explained_variance_ratio:
        Fraction of total variance per retained component.
    mean:
        Per-feature mean removed before projection.
    n_components:
        Number of retained components.
    """

    transformed: np.ndarray
    components: np.ndarray
    explained_variance: np.ndarray
    explained_variance_ratio: np.ndarray
    mean: np.ndarray

    @property
    def n_components(self):
        return int(self.components.shape[0])

    @property
    def total_retained_ratio(self):
        """Sum of the retained components' variance ratios."""
        return float(self.explained_variance_ratio.sum())

    def transform(self, x):
        """Project new rows into the fitted component space."""
        x = np.asarray(x, dtype=float)
        return (x - self.mean) @ self.components.T

    def inverse_transform(self, z):
        """Map component-space rows back to the original feature space."""
        z = np.asarray(z, dtype=float)
        return z @ self.components + self.mean


def _deterministic_signs(u, vt):
    """Flip singular vector signs so each component's largest loading is
    positive (matches scikit-learn's ``svd_flip``)."""
    max_rows = np.argmax(np.abs(vt), axis=1)
    signs = np.sign(vt[np.arange(vt.shape[0]), max_rows])
    signs[signs == 0] = 1.0
    return u * signs[None, :], vt * signs[:, None]


@dataclass
class PCA:
    """PCA estimator.

    Exactly one of ``n_components`` / ``variance`` should be set; if both
    are ``None`` every non-degenerate component is kept.

    Parameters
    ----------
    n_components:
        Fixed number of components to keep.
    variance:
        Retained-variance-ratio target in ``(0, 1]``; the smallest number
        of leading components whose cumulative ratio reaches the target is
        kept (the paper uses 0.98).
    """

    n_components: int | None = None
    variance: float | None = None

    def __post_init__(self):
        if self.n_components is not None and self.variance is not None:
            raise ValueError("set n_components or variance, not both")
        if self.variance is not None and not (0.0 < self.variance <= 1.0):
            raise ValueError(f"variance must be in (0, 1], got {self.variance}")
        if self.n_components is not None and self.n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {self.n_components}")

    def fit_transform(self, x):
        """Fit the model on ``x`` and return a :class:`PCAResult`."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        n, m = x.shape
        if n < 2:
            raise ValueError("PCA needs at least two samples")
        mean = x.mean(axis=0)
        centred = x - mean
        u, s, vt = np.linalg.svd(centred, full_matrices=False)
        u, vt = _deterministic_signs(u, vt)

        # Per-component variance; ddof=1 matches the usual sample variance.
        var = (s ** 2) / (n - 1)
        total = var.sum()
        if total <= 0:
            # Degenerate (all rows identical): keep one zero component.
            keep = 1
            ratio = np.zeros(1)
        else:
            ratio = var / total
            if self.n_components is not None:
                keep = min(self.n_components, len(s))
            elif self.variance is not None:
                cumulative = np.cumsum(ratio)
                keep = int(np.searchsorted(cumulative, self.variance - 1e-12) + 1)
                keep = min(keep, len(s))
            else:
                keep = len(s)

        transformed = u[:, :keep] * s[:keep]
        return PCAResult(
            transformed=transformed,
            components=vt[:keep],
            explained_variance=var[:keep],
            explained_variance_ratio=(
                ratio[:keep] if total > 0 else np.zeros(keep)
            ),
            mean=mean,
        )


def pca_fit_transform(x, variance=None, n_components=None):
    """Functional shorthand mirroring Eq. 11-12: returns
    ``(transformed, n_components)`` like the paper's
    ``<X^T, d> = PCA(X_norm, variance)`` notation, plus the full result.

    Returns
    -------
    tuple[numpy.ndarray, int, PCAResult]
    """
    result = PCA(n_components=n_components, variance=variance).fit_transform(x)
    return result.transformed, result.n_components, result
