"""Descriptive statistics, empirical CDFs, and series resampling.

The TrendScore normalization (Section III-B.1, Fig. 1) transforms every raw
PMU time series twice before DTW:

* **y-axis**: replace absolute counter values with their percentile under
  the series' own empirical CDF, bounding values to ``[0, 100]``;
* **x-axis**: resample the series onto execution-time *percentiles* so
  workloads of different durations become comparable.

Those two primitives live here, together with small summary helpers used
by reports and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def empirical_cdf(values):
    """Empirical CDF evaluated at each input value, as percentiles.

    Parameters
    ----------
    values:
        1-D array of observations.

    Returns
    -------
    numpy.ndarray
        For each ``values[i]``, ``100 * P(X <= values[i])`` under the
        empirical distribution of ``values`` itself. Ties receive equal
        percentiles (the "max" rank convention), so output lies in
        ``(0, 100]``.
    """
    v = np.asarray(values, dtype=float).ravel()
    if v.size == 0:
        raise ValueError("values is empty")
    order = np.sort(v)
    ranks = np.searchsorted(order, v, side="right")
    return 100.0 * ranks / v.size


def percentile_resample(series, n_points=100):
    """Resample a time series onto execution-time percentiles.

    Linearly interpolates the series at ``n_points`` evenly spaced
    positions of *relative* execution time, so two series of different
    lengths map onto a common x-axis (Fig. 1's x-normalization).

    Parameters
    ----------
    series:
        1-D array sampled at uniform intervals over the workload's run.
    n_points:
        Length of the resampled series.

    Returns
    -------
    numpy.ndarray of shape ``(n_points,)``
    """
    s = np.asarray(series, dtype=float).ravel()
    if s.size == 0:
        raise ValueError("series is empty")
    if n_points < 1:
        raise ValueError(f"n_points must be >= 1, got {n_points}")
    if s.size == 1:
        return np.full(n_points, s[0])
    src = np.linspace(0.0, 100.0, s.size)
    dst = np.linspace(0.0, 100.0, n_points)
    return np.interp(dst, src, s)


def normalize_series_for_dtw(series, n_points=100):
    """Full Fig. 1 normalization: CDF on the y-axis, percentile x-axis.

    The CDF transform runs first (on the raw samples), then the resampling
    interpolates the percentile values onto the common time grid. Output
    values lie in ``[0, 100]``, bounding the pointwise DTW cost to
    ``[0, 100]`` as the paper notes.
    """
    return percentile_resample(empirical_cdf(series), n_points=n_points)


@dataclass(frozen=True)
class SeriesSummary:
    """Five-number-style summary of a 1-D sample."""

    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    n: int


def summary(values):
    """Compute a :class:`SeriesSummary` for a 1-D sample."""
    v = np.asarray(values, dtype=float).ravel()
    if v.size == 0:
        raise ValueError("values is empty")
    return SeriesSummary(
        mean=float(v.mean()),
        std=float(v.std()),
        minimum=float(v.min()),
        maximum=float(v.max()),
        median=float(np.median(v)),
        n=int(v.size),
    )


def coefficient_of_variation(values):
    """Ratio of standard deviation to mean (0 when the mean is 0)."""
    v = np.asarray(values, dtype=float).ravel()
    if v.size == 0:
        raise ValueError("values is empty")
    mean = v.mean()
    if mean == 0:
        return 0.0
    return float(v.std() / abs(mean))
