"""Reference-vs-vectorized benchmark for the stats compute kernels.

Times the two registered compute backends (:mod:`repro.stats.backend`)
on the pairwise hot path -- the banded all-pairs DTW sweep and the
shape-bucketed mixed-length sweep -- plus an informational column-KS
timing. The committed ``BENCH_kernels.json`` baseline records the
expected shape; its ``min_speedup_banded`` (5x) and
``min_speedup_mixed`` (3x) fields are the guards ``--check`` (the
``make bench-kernels`` target) enforces.

::

    python -m repro.stats.kernel_bench            # run and print
    python -m repro.stats.kernel_bench --write    # refresh BENCH_kernels.json
    python -m repro.stats.kernel_bench --check    # exit 1 below baseline

Timings are machine-dependent and only indicative; the speedup *ratio*
is the contract. Every vectorized result is additionally diffed
bit-for-bit against the reference backend's -- a kernel that bought its
speed with a single flipped bit fails here before it fails anywhere
subtle.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.stats.backend import get_backend
from repro.stats.kstest import ks_statistic_uniform, ks_statistic_uniform_columns

#: Banded all-pairs subject: SPEC'17-sized (43 series), equal length.
BANDED_SUBJECT = {"n_series": 43, "length": 100, "band": 8}
#: Mixed-length subject: same count, lengths cycling through four sizes
#: so the shape-bucketed kernel sees several buckets per sweep.
MIXED_SUBJECT = {"n_series": 43, "lengths": (64, 80, 96, 100)}
#: Column-KS subject (informational timing, no gate).
KS_SUBJECT = {"n_samples": 256, "n_columns": 512}

MIN_SPEEDUP_BANDED = 5.0
MIN_SPEEDUP_MIXED = 3.0
DEFAULT_BASELINE = "BENCH_kernels.json"
REPEATS = 3


def build_banded_subject(seed=0, n_series=43, length=100, band=8):
    """Equal-length series stacked ``(n, L)`` plus the all-pairs index."""
    rng = np.random.default_rng(seed)
    arrays = [rng.uniform(0.0, 10.0, size=length) for _ in range(n_series)]
    idx_i, idx_j = np.triu_indices(n_series, k=1)
    return arrays, idx_i, idx_j, band


def build_mixed_subject(seed=1, n_series=43, lengths=(64, 80, 96, 100)):
    """Unequal-length series (cycling lengths) plus the all-pairs index."""
    rng = np.random.default_rng(seed)
    arrays = [
        rng.uniform(0.0, 10.0, size=lengths[i % len(lengths)])
        for i in range(n_series)
    ]
    idx_i, idx_j = np.triu_indices(n_series, k=1)
    return arrays, idx_i, idx_j


def _best_of(repeats, fn):
    """Best-of-N wall time and the last result (results are
    deterministic, so any run's output stands for all of them)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _time_pairs(arrays, idx_i, idx_j, band, repeats=REPEATS):
    """Time both backends over one pair sweep; bit-diff the results."""
    ref_s, ref = _best_of(repeats, lambda: get_backend(
        "reference").pair_distances(arrays, idx_i, idx_j, band))
    vec_s, vec = _best_of(repeats, lambda: get_backend(
        "vectorized").pair_distances(arrays, idx_i, idx_j, band))
    return {
        "n_pairs": int(len(idx_i)),
        "reference_s": round(ref_s, 4),
        "vectorized_s": round(vec_s, 4),
        "speedup": (round(ref_s / vec_s, 2) if vec_s > 0
                    else float("inf")),
        "identical": (np.asarray(ref, dtype=float).tobytes()
                      == np.asarray(vec, dtype=float).tobytes()),
    }


def _time_ks(seed=2, n_samples=4096, n_columns=24, repeats=REPEATS):
    """Time the per-column loop vs the column-batched KS kernel."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1.0, size=(n_samples, n_columns))
    ref_s, ref = _best_of(repeats, lambda: np.array(
        [ks_statistic_uniform(x[:, c]) for c in range(x.shape[1])]))
    vec_s, vec = _best_of(
        repeats, lambda: ks_statistic_uniform_columns(x))
    return {
        "n_samples": n_samples,
        "n_columns": n_columns,
        "reference_s": round(ref_s, 4),
        "vectorized_s": round(vec_s, 4),
        "speedup": (round(ref_s / vec_s, 2) if vec_s > 0
                    else float("inf")),
        "identical": (np.asarray(ref, dtype=float).tobytes()
                      == np.asarray(vec, dtype=float).tobytes()),
    }


def run_bench(seed=0):
    """Run all three kernel sweeps; return the result record."""
    arrays, idx_i, idx_j, band = build_banded_subject(
        seed=seed, **BANDED_SUBJECT)
    banded = _time_pairs(arrays, idx_i, idx_j, band)

    arrays, idx_i, idx_j = build_mixed_subject(
        seed=seed + 1, **MIXED_SUBJECT)
    mixed = _time_pairs(arrays, idx_i, idx_j, None)

    ks = _time_ks(seed=seed + 2, **KS_SUBJECT)

    return {
        "banded": {**BANDED_SUBJECT, **banded},
        "mixed": {**{k: list(v) if isinstance(v, tuple) else v
                     for k, v in MIXED_SUBJECT.items()}, **mixed},
        "ks": ks,
        "min_speedup_banded": MIN_SPEEDUP_BANDED,
        "min_speedup_mixed": MIN_SPEEDUP_MIXED,
    }


def render(result):
    banded, mixed, ks = result["banded"], result["mixed"], result["ks"]
    lines = [
        "stats kernel bench (reference vs vectorized backend):",
        f"  banded all-pairs DTW ({banded['n_series']} series, "
        f"L={banded['length']}, band={banded['band']}, "
        f"{banded['n_pairs']} pairs):",
        f"    reference:  {banded['reference_s']:.3f} s",
        f"    vectorized: {banded['vectorized_s']:.3f} s  "
        f"({banded['speedup']:.1f}x, gate >= "
        f"{result['min_speedup_banded']:.0f}x, "
        f"bit-identical: {banded['identical']})",
        f"  mixed-length bucketed DTW ({mixed['n_series']} series, "
        f"lengths {mixed['lengths']}, {mixed['n_pairs']} pairs):",
        f"    reference:  {mixed['reference_s']:.3f} s",
        f"    vectorized: {mixed['vectorized_s']:.3f} s  "
        f"({mixed['speedup']:.1f}x, gate >= "
        f"{result['min_speedup_mixed']:.0f}x, "
        f"bit-identical: {mixed['identical']})",
        f"  column KS ({ks['n_samples']} samples x "
        f"{ks['n_columns']} columns, informational):",
        f"    reference:  {ks['reference_s']:.3f} s",
        f"    vectorized: {ks['vectorized_s']:.3f} s  "
        f"({ks['speedup']:.1f}x, bit-identical: {ks['identical']})",
    ]
    return "\n".join(lines)


def check(result, baseline):
    """Gate failures for one run against one baseline record."""
    gate_banded = float(baseline.get("min_speedup_banded",
                                     MIN_SPEEDUP_BANDED))
    gate_mixed = float(baseline.get("min_speedup_mixed",
                                    MIN_SPEEDUP_MIXED))
    failures = []
    for name in ("banded", "mixed", "ks"):
        if not result[name]["identical"]:
            failures.append(f"{name}: vectorized results are not "
                            f"bit-identical to the reference backend")
    if result["banded"]["speedup"] < gate_banded:
        failures.append(
            f"banded: speedup {result['banded']['speedup']:.1f}x below "
            f"the {gate_banded:.0f}x gate")
    if result["mixed"]["speedup"] < gate_mixed:
        failures.append(
            f"mixed: speedup {result['mixed']['speedup']:.1f}x below "
            f"the {gate_mixed:.0f}x gate")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.stats.kernel_bench",
        description="Time the vectorized compute backend against the "
                    "reference kernels; verify bit-identity.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH", default=DEFAULT_BASELINE,
                        help="baseline file for --write/--check")
    parser.add_argument("--write", action="store_true",
                        help="write the result as the new baseline")
    parser.add_argument("--check", action="store_true",
                        help="fail unless speedups meet the baseline's "
                             "gates and all results are bit-identical")
    args = parser.parse_args(argv)

    result = run_bench(seed=args.seed)
    print(render(result))

    if args.write:
        with open(args.json, "w") as f:
            json.dump(result, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.json}")
    if args.check:
        try:
            with open(args.json) as f:
                baseline = json.load(f)
        except FileNotFoundError:
            baseline = {}
        failures = check(result, baseline)
        if failures:
            for failure in failures:
                print(f"CHECK FAIL: {failure}")
            return 1
        print(f"check passed: banded >= "
              f"{baseline.get('min_speedup_banded', MIN_SPEEDUP_BANDED):.0f}x, "
              f"mixed >= "
              f"{baseline.get('min_speedup_mixed', MIN_SPEEDUP_MIXED):.0f}x, "
              f"all bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
