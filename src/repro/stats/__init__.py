"""Statistics substrate for Perspector.

Every numerical kernel used by the Perspector metrics lives here and is
implemented from first principles on top of numpy:

* :mod:`repro.stats.distance` -- vector and pairwise distances.
* :mod:`repro.stats.preprocessing` -- normalization and scaling helpers.
* :mod:`repro.stats.kmeans` -- K-means clustering (k-means++ seeding,
  multiple restarts, empty-cluster repair).
* :mod:`repro.stats.silhouette` -- silhouette coefficients (Eq. 1-5 of the
  paper).
* :mod:`repro.stats.pca` -- principal component analysis via SVD with a
  retained-variance cutoff.
* :mod:`repro.stats.dtw` -- dynamic time warping with optional Sakoe-Chiba
  band, including the batched pair kernels.
* :mod:`repro.stats.kstest` -- one- and two-sample Kolmogorov-Smirnov tests,
  including the column-batched one-sample kernel.
* :mod:`repro.stats.backend` -- the pluggable compute-backend registry
  (``reference`` | ``vectorized``) the engine dispatches the DTW / KS hot
  paths through; every backend is bit-identical to the reference oracle.
* :mod:`repro.stats.lhs` -- Latin hypercube sampling (plain and maximin).
* :mod:`repro.stats.hierarchical` -- agglomerative clustering, used by the
  prior-work baseline.
* :mod:`repro.stats.descriptive` -- summary statistics and empirical CDFs.

The implementations favour clarity over raw speed, but all hot paths are
vectorized; none of them loops over individual samples in Python except
where the algorithm is inherently sequential (e.g. the DTW recurrence,
which runs over a numpy cost matrix row by row).
"""

from repro.stats.distance import (
    euclidean,
    manhattan,
    pairwise_distances,
    cdist,
)
from repro.stats.preprocessing import (
    minmax_normalize,
    joint_minmax_normalize,
    zscore_normalize,
    clip_unit_interval,
)
from repro.stats.kmeans import KMeans, KMeansResult, kmeans
from repro.stats.silhouette import (
    silhouette_samples,
    silhouette_per_cluster,
    silhouette_score,
)
from repro.stats.pca import PCA, PCAResult, pca_fit_transform
from repro.stats.dtw import (
    dtw_distance,
    dtw_path,
    dtw_matrix,
    batched_pair_distances,
    banded_pair_distances,
    bucketed_pair_distances,
)
from repro.stats.kstest import (
    ks_statistic_uniform,
    ks_statistic_uniform_columns,
    kolmogorov_sf_batch,
    ks_test_uniform,
    ks_two_sample,
    KSResult,
)
from repro.stats.backend import (
    ComputeBackend,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.stats.lhs import latin_hypercube, maximin_latin_hypercube
from repro.stats.hierarchical import (
    HierarchicalClustering,
    linkage_matrix,
    fcluster_by_count,
)
from repro.stats.descriptive import (
    empirical_cdf,
    percentile_resample,
    summary,
    coefficient_of_variation,
)
from repro.stats.bootstrap import (
    BootstrapResult,
    bootstrap_statistic,
    ranking_stability,
)

__all__ = [
    "euclidean",
    "manhattan",
    "pairwise_distances",
    "cdist",
    "minmax_normalize",
    "joint_minmax_normalize",
    "zscore_normalize",
    "clip_unit_interval",
    "KMeans",
    "KMeansResult",
    "kmeans",
    "silhouette_samples",
    "silhouette_per_cluster",
    "silhouette_score",
    "PCA",
    "PCAResult",
    "pca_fit_transform",
    "dtw_distance",
    "dtw_path",
    "dtw_matrix",
    "batched_pair_distances",
    "banded_pair_distances",
    "bucketed_pair_distances",
    "ks_statistic_uniform",
    "ks_statistic_uniform_columns",
    "kolmogorov_sf_batch",
    "ks_test_uniform",
    "ks_two_sample",
    "KSResult",
    "ComputeBackend",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "latin_hypercube",
    "maximin_latin_hypercube",
    "HierarchicalClustering",
    "linkage_matrix",
    "fcluster_by_count",
    "empirical_cdf",
    "percentile_resample",
    "summary",
    "coefficient_of_variation",
    "BootstrapResult",
    "bootstrap_statistic",
    "ranking_stability",
]
