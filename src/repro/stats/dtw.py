"""Dynamic time warping (DTW).

The TrendScore (Section III-B, Eq. 7-8) measures how differently two
workloads' PMU time series evolve by the DTW distance between them [27].
DTW non-linearly warps the time axis to find the minimum-cost alignment of
two series that may have different lengths.

Implementation notes
--------------------
* The recurrence is the classic ``D[i,j] = cost(i,j) + min(D[i-1,j],
  D[i,j-1], D[i-1,j-1])`` with an absolute-difference local cost for 1-D
  series (Euclidean for multivariate rows).
* The cost matrix is filled row by row with vectorized numpy ops; only the
  inherently sequential row loop remains in Python.
* An optional Sakoe-Chiba band constrains the warping path to a diagonal
  corridor -- an ablation knob (the paper uses unconstrained DTW).
* :func:`dtw_path` recovers the optimal alignment for inspection/plots.

Batched kernels and the bit-identity invariant
----------------------------------------------
Besides the per-pair reference fills, three batched kernels compute many
pairs at once: :func:`batched_pair_distances` (equal-length, unbanded),
:func:`banded_pair_distances` (equal-length with a Sakoe-Chiba band) and
:func:`bucketed_pair_distances` (mixed-length pairs grouped by exact
``(len_a, len_b)`` shape). All three run anti-diagonal wavefronts and
are **bit-identical** to the sequential reference fills, by two facts:

* ``min`` over IEEE-754 doubles is exact -- it returns one of its
  operands unchanged -- so ``min(min(up, left), diag)`` equals
  ``min(min(up, diag), left)`` bit for bit regardless of association or
  evaluation order (all accumulated values here are non-negative or
  ``+inf``, so the ``-0.0`` vs ``+0.0`` tie case cannot arise).
* Every cell's final add ``cost[i, j] + m`` then sees the identical two
  operands in both orders of computation, and each wavefront step is
  elementwise over the pair axis, so batch composition and pair-axis
  chunking cannot move a bit either.

The border associations differ deliberately between the reference fills
(:func:`_accumulate` folds ``cost[0, 0]`` into the first row *after* the
cumsum; :func:`_accumulate_banded` and :func:`_pair_wavefront` accumulate
borders as plain prefix sums) and the batched kernels replicate whichever
reference fill serves their pair class -- see :func:`_batched_accumulate`.
"""

from __future__ import annotations

import numpy as np


def _as_series(t, name):
    t = np.asarray(t, dtype=float)
    if t.ndim == 1:
        t = t[:, None]
    if t.ndim != 2:
        raise ValueError(f"{name} must be 1-D or 2-D, got shape {t.shape}")
    if t.shape[0] == 0:
        raise ValueError(f"{name} is empty")
    if not np.all(np.isfinite(t)):
        raise ValueError(f"{name} contains non-finite values")
    return t


def _local_cost_matrix(a, b):
    """Pairwise local costs between all elements of two series."""
    if a.shape[1] == 1 and b.shape[1] == 1:
        return np.abs(a[:, 0][:, None] - b[:, 0][None, :])
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=2))


def _accumulate_banded(cost, band):
    """Row-by-row DTW fill with a Sakoe-Chiba band (reference path)."""
    n, m = cost.shape
    acc = np.full((n, m), np.inf)
    band = max(band, abs(n - m))  # band must admit the corner cell
    acc[0, 0] = cost[0, 0]
    for j in range(1, m):
        if j > band:
            break
        acc[0, j] = acc[0, j - 1] + cost[0, j]
    for i in range(1, n):
        if i > band:
            break
        acc[i, 0] = acc[i - 1, 0] + cost[i, 0]
    for i in range(1, n):
        lo = max(1, i - band)
        hi = min(m, i + band + 1)
        if lo >= hi:
            continue
        prev = acc[i - 1]
        row = acc[i]
        best_up = np.minimum(prev[lo:hi], prev[lo - 1 : hi - 1])
        seg = cost[i, lo:hi]
        left = row[lo - 1]
        for off in range(hi - lo):
            left = seg[off] + min(best_up[off], left)
            row[lo + off] = left
    return acc


def _accumulate(cost, band=None):
    """Fill the DTW accumulated-cost matrix.

    The unbanded path runs an anti-diagonal wavefront: every cell on
    diagonal ``d = i + j`` depends only on diagonals ``d-1`` and ``d-2``,
    so each wavefront step is one vectorized numpy minimum -- ~50x
    faster than the per-cell recurrence for the 100-point grids the
    TrendScore uses.
    """
    if band is not None:
        return _accumulate_banded(cost, band)
    n, m = cost.shape
    acc = np.full((n, m), np.inf)
    acc[0, 0] = cost[0, 0]
    acc[0, 1:] = np.cumsum(cost[0, 1:]) + cost[0, 0]
    acc[:, 0] = np.cumsum(cost[:, 0])
    if n == 1 or m == 1:
        return acc
    # Wavefront over anti-diagonals d = i + j, starting where interior
    # cells (i >= 1, j >= 1) first appear.
    for d in range(2, n + m - 1):
        i_lo = max(1, d - (m - 1))
        i_hi = min(n - 1, d - 1)
        if i_lo > i_hi:
            continue
        i = np.arange(i_lo, i_hi + 1)
        j = d - i
        up = acc[i - 1, j]
        left = acc[i, j - 1]
        diag = acc[i - 1, j - 1]
        acc[i, j] = cost[i, j] + np.minimum(np.minimum(up, left), diag)
    return acc


def dtw_distance(a, b, band=None, normalize=False):
    """DTW distance between two series.

    Parameters
    ----------
    a, b:
        1-D series (or 2-D ``(len, dims)`` multivariate series).
    band:
        Optional Sakoe-Chiba band half-width; ``None`` means unconstrained
        (the paper's setting).
    normalize:
        If ``True``, divide the path cost by the warping path length,
        making distances comparable across series-length scales. The
        length is counted by :func:`_path_length` without materializing
        the path; request :func:`dtw_path` when the alignment itself is
        needed.

    Returns
    -------
    float
    """
    a = _as_series(a, "a")
    b = _as_series(b, "b")
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"dimensionality mismatch: {a.shape[1]} vs {b.shape[1]}"
        )
    cost = _local_cost_matrix(a, b)
    acc = _accumulate(cost, band=band)
    total = float(acc[-1, -1])
    if not normalize:
        return total
    return total / _path_length(acc)


def _path_length(acc):
    """Length of the warping path :func:`_traceback` would recover,
    without materializing it.

    Walks the same greedy backward steps with the same tie-breaking
    (``min`` over the candidates ordered diagonal, up, left keeps the
    first minimum, so diagonal wins ties, then up), counting instead of
    collecting -- ``normalize=True`` distances are unchanged while the
    path list allocation disappears.
    """
    i, j = acc.shape[0] - 1, acc.shape[1] - 1
    length = 1
    while i > 0 or j > 0:
        if i == 0:
            j -= 1
        elif j == 0:
            i -= 1
        else:
            diag = acc[i - 1, j - 1]
            up = acc[i - 1, j]
            left = acc[i, j - 1]
            if diag <= up and diag <= left:
                i -= 1
                j -= 1
            elif up <= left:
                i -= 1
            else:
                j -= 1
        length += 1
    return length


def _traceback(acc):
    """Recover the optimal warping path from the accumulated-cost matrix."""
    i, j = acc.shape[0] - 1, acc.shape[1] - 1
    path = [(i, j)]
    while i > 0 or j > 0:
        if i == 0:
            j -= 1
        elif j == 0:
            i -= 1
        else:
            candidates = (
                (acc[i - 1, j - 1], i - 1, j - 1),
                (acc[i - 1, j], i - 1, j),
                (acc[i, j - 1], i, j - 1),
            )
            _, i, j = min(candidates, key=lambda c: c[0])
        path.append((i, j))
    path.reverse()
    return path


def dtw_path(a, b, band=None):
    """DTW distance plus the optimal alignment path.

    Returns
    -------
    tuple[float, list[tuple[int, int]]]
        ``(distance, [(i, j), ...])`` with the path running from ``(0, 0)``
        to ``(len(a)-1, len(b)-1)``.
    """
    a = _as_series(a, "a")
    b = _as_series(b, "b")
    cost = _local_cost_matrix(a, b)
    acc = _accumulate(cost, band=band)
    return float(acc[-1, -1]), _traceback(acc)


#: Pairs per wavefront batch. The batched kernel materializes two
#: ``(pairs, L, L)`` float64 tensors; at SPEC'17 scale (903 pairs,
#: L=100) that is ~140 MB -- chunking the pair axis caps it at
#: ~2 MB/chunk with no output change (the wavefront is elementwise
#: over the pair axis, so chunk composition cannot move a bit).
DEFAULT_PAIR_CHUNK = 128


def batched_pair_distances(x, idx_i, idx_j, pair_chunk=DEFAULT_PAIR_CHUNK):
    """DTW distances for selected pairs of equal-length 1-D series.

    One batched anti-diagonal wavefront over a ``(pairs, L, L)`` tensor,
    processed ``pair_chunk`` pairs at a time to cap peak memory. Every
    operation is elementwise over the pair axis, so each pair's distance
    is bit-identical no matter which other pairs share the batch or how
    the batch is chunked -- the engine's pair cache relies on that to
    mix cached and freshly-computed pairs freely.

    Parameters
    ----------
    x:
        ``(k, L)`` matrix, one series per row.
    idx_i, idx_j:
        Row-index arrays of equal length selecting the pairs.
    pair_chunk:
        Maximum pairs per materialized ``(pairs, L, L)`` tensor;
        ``None`` disables chunking (the pre-chunking behaviour).

    Returns
    -------
    numpy.ndarray
        ``(len(idx_i),)`` distances, one per requested pair.
    """
    idx_i = np.asarray(idx_i)
    idx_j = np.asarray(idx_j)
    n_pairs = idx_i.shape[0]
    if pair_chunk is not None and 0 < pair_chunk < n_pairs:
        out = np.empty(n_pairs)
        for start in range(0, n_pairs, pair_chunk):
            stop = min(start + pair_chunk, n_pairs)
            out[start:stop] = _pair_wavefront(
                x, idx_i[start:stop], idx_j[start:stop]
            )
        return out
    return _pair_wavefront(x, idx_i, idx_j)


def _pair_wavefront(x, idx_i, idx_j):
    """One materialized anti-diagonal wavefront over a pair batch."""
    length = x.shape[1]
    cost = np.abs(x[idx_i][:, :, None] - x[idx_j][:, None, :])
    acc = np.empty_like(cost)
    acc[:, 0, :] = np.cumsum(cost[:, 0, :], axis=1)
    acc[:, :, 0] = np.cumsum(cost[:, :, 0], axis=1)
    for d in range(2, 2 * length - 1):
        i_lo = max(1, d - (length - 1))
        i_hi = min(length - 1, d - 1)
        if i_lo > i_hi:
            continue
        i = np.arange(i_lo, i_hi + 1)
        j = d - i
        up = acc[:, i - 1, j]
        left = acc[:, i, j - 1]
        diag = acc[:, i - 1, j - 1]
        acc[:, i, j] = cost[:, i, j] + np.minimum(
            np.minimum(up, left), diag
        )
    return acc[:, -1, -1]


def _batched_accumulate(cost, band=None):
    """Anti-diagonal wavefront DTW fill over a ``(pairs, n, m)`` batch.

    The batched twin of the per-pair reference fills, replicating their
    border associations exactly so it is bit-identical per pair:

    * ``band=None`` matches :func:`_accumulate`: the first row is
      ``cumsum(cost[0, 1:]) + cost[0, 0]`` (the reference folds the
      corner in *after* the cumsum), the first column a plain cumsum.
    * banded matches :func:`_accumulate_banded`: both borders are plain
      prefix sums truncated at the (corner-admitting) band, and only
      cells with ``|i - j| <= band`` are filled.

    Interior cells compute ``cost + min(min(up, left), diag)``; the
    reference row fill computes ``cost + min(min(up, diag), left)`` --
    identical bits because IEEE-754 ``min`` is exact regardless of
    association (see the module docstring).
    """
    p, n, m = cost.shape
    acc = np.full((p, n, m), np.inf)
    if band is None:
        b = None
        acc[:, 0, 0] = cost[:, 0, 0]
        acc[:, 0, 1:] = np.cumsum(cost[:, 0, 1:], axis=1) + cost[:, 0, :1]
        acc[:, :, 0] = np.cumsum(cost[:, :, 0], axis=1)
    else:
        b = max(band, abs(n - m))  # band must admit the corner cell
        row = np.cumsum(cost[:, 0, :], axis=1)
        acc[:, 0, : min(m, b + 1)] = row[:, : min(m, b + 1)]
        col = np.cumsum(cost[:, :, 0], axis=1)
        acc[:, 1 : min(n, b + 1), 0] = col[:, 1 : min(n, b + 1)]
    for d in range(2, n + m - 1):
        i_lo = max(1, d - (m - 1))
        i_hi = min(n - 1, d - 1)
        if b is not None:
            # |2i - d| <= b keeps the diagonal's cells inside the band.
            i_lo = max(i_lo, (d - b + 1) // 2)
            i_hi = min(i_hi, (d + b) // 2)
        if i_lo > i_hi:
            continue
        i = np.arange(i_lo, i_hi + 1)
        j = d - i
        up = acc[:, i - 1, j]
        left = acc[:, i, j - 1]
        diag = acc[:, i - 1, j - 1]
        acc[:, i, j] = cost[:, i, j] + np.minimum(
            np.minimum(up, left), diag
        )
    return acc


def banded_pair_distances(x, idx_i, idx_j, band,
                          pair_chunk=DEFAULT_PAIR_CHUNK):
    """Banded DTW distances for selected pairs of equal-length 1-D series.

    The banded counterpart of :func:`batched_pair_distances`: one
    batched anti-diagonal wavefront with the band mask applied per
    diagonal, bit-identical to :func:`_accumulate_banded` run pair by
    pair (banded ablations get the same fast path unbanded runs enjoy).

    Parameters
    ----------
    x:
        ``(k, L)`` matrix, one series per row.
    idx_i, idx_j:
        Row-index arrays of equal length selecting the pairs.
    band:
        Sakoe-Chiba band half-width (clamped up to admit the corner).
    pair_chunk:
        Maximum pairs per materialized ``(pairs, L, L)`` tensor;
        ``None`` disables chunking. Chunking cannot move a bit: every
        wavefront operation is elementwise over the pair axis.

    Returns
    -------
    numpy.ndarray
        ``(len(idx_i),)`` distances, one per requested pair.
    """
    idx_i = np.asarray(idx_i)
    idx_j = np.asarray(idx_j)
    n_pairs = idx_i.shape[0]
    if pair_chunk is not None and 0 < pair_chunk < n_pairs:
        out = np.empty(n_pairs)
        for start in range(0, n_pairs, pair_chunk):
            stop = min(start + pair_chunk, n_pairs)
            out[start:stop] = _banded_wavefront(
                x, idx_i[start:stop], idx_j[start:stop], band
            )
        return out
    return _banded_wavefront(x, idx_i, idx_j, band)


def _banded_wavefront(x, idx_i, idx_j, band):
    """One materialized banded wavefront over a pair batch."""
    cost = np.abs(x[idx_i][:, :, None] - x[idx_j][:, None, :])
    return _batched_accumulate(cost, band)[:, -1, -1]


def bucketed_pair_distances(arrays, idx_i, idx_j, band=None,
                            pair_chunk=DEFAULT_PAIR_CHUNK):
    """DTW distances for selected pairs of 1-D series of *any* lengths.

    Mixed-length pair sets fall off the equal-length fast path and, in
    the reference implementation, pay one Python-level
    :func:`dtw_distance` per pair. Here the pairs are grouped by their
    exact ``(len_a, len_b)`` shape and each bucket runs one batched
    wavefront over a ``(pairs, len_a, len_b)`` tensor.

    Buckets are shape-exact rather than padded: the band clamp
    ``max(band, |n - m|)`` and the border cumsums both depend on the
    true lengths, so padding would change bits. Per pair the result is
    bit-identical to ``dtw_distance(a, b, band=band)`` -- the cost
    matrix is elementwise, and :func:`_batched_accumulate` replicates
    the reference fill for the bucket's shape and band.

    Parameters
    ----------
    arrays:
        Validated 1-D float series (see :func:`validate_series_list`).
    idx_i, idx_j:
        Index arrays of equal length selecting the pairs.
    band:
        Optional Sakoe-Chiba band half-width; ``None`` = unconstrained.
    pair_chunk:
        Maximum pairs per materialized bucket tensor; ``None`` disables
        chunking.

    Returns
    -------
    numpy.ndarray
        ``(len(idx_i),)`` distances, in the requested pair order.
    """
    idx_i = np.asarray(idx_i)
    idx_j = np.asarray(idx_j)
    n_pairs = idx_i.shape[0]
    out = np.empty(n_pairs)
    buckets = {}
    for p in range(n_pairs):
        shape = (arrays[idx_i[p]].shape[0], arrays[idx_j[p]].shape[0])
        buckets.setdefault(shape, []).append(p)
    chunk = n_pairs if (pair_chunk is None or pair_chunk < 1) else pair_chunk
    for members in buckets.values():
        for start in range(0, len(members), max(chunk, 1)):
            part = members[start : start + chunk]
            a = np.stack([arrays[idx_i[p]] for p in part])
            b_mat = np.stack([arrays[idx_j[p]] for p in part])
            cost = np.abs(a[:, :, None] - b_mat[:, None, :])
            out[part] = _batched_accumulate(cost, band)[:, -1, -1]
    return out


def _pairwise_aligned(x):
    """All-pairs DTW distances for equal-length 1-D series.

    Parameters
    ----------
    x:
        ``(k, L)`` matrix, one series per row.

    Returns
    -------
    numpy.ndarray
        ``(k, k)`` symmetric distance matrix.
    """
    k = x.shape[0]
    out = np.zeros((k, k))
    if k < 2:
        return out
    idx_i, idx_j = np.triu_indices(k, k=1)
    totals = batched_pair_distances(x, idx_i, idx_j)
    out[idx_i, idx_j] = totals
    out[idx_j, idx_i] = totals
    return out


def validate_series_list(series):
    """Coerce a series list to float arrays, naming the bad input.

    Every series must be non-empty, finite and 1-D or 2-D; a violation
    raises ``ValueError`` identifying the offending series by index
    (``series[3] contains non-finite values``), instead of the
    anonymous per-pair error a later ``dtw_distance`` call would give.

    Returns
    -------
    list[numpy.ndarray]
        The inputs as float arrays (original dimensionality preserved).
    """
    arrays = []
    for i, s in enumerate(series):
        a = np.asarray(s, dtype=float)
        _as_series(a, f"series[{i}]")
        arrays.append(a)
    return arrays


def dtw_matrix(series, band=None, normalize=False):
    """Symmetric pairwise DTW distance matrix for a list of series.

    This is the inner computation of Eq. 7: ``TScore_z`` averages the
    off-diagonal entries of this matrix. Equal-length 1-D series without
    band/normalize options take the batched wavefront fast path (the
    TrendScore always lands there after the Fig. 1 normalization).

    Inputs are validated up front: an empty or non-finite series raises
    ``ValueError`` naming its index, rather than silently dropping the
    whole batch off the fast path and failing later with an anonymous
    per-pair error.
    """
    n = len(series)
    if n == 0:
        raise ValueError("series list is empty")
    arrays = validate_series_list(series)
    if (
        band is None
        and not normalize
        and all(a.ndim == 1 for a in arrays)
        and len({a.shape[0] for a in arrays}) == 1
    ):
        return _pairwise_aligned(np.vstack(arrays))
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = dtw_distance(series[i], series[j], band=band, normalize=normalize)
            out[i, j] = d
            out[j, i] = d
    return out
