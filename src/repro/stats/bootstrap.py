"""Bootstrap confidence intervals.

The Perspector scores are point estimates computed from one measurement
run. How stable are they -- and, more importantly, how stable are the
*suite rankings* built on them? This module provides the standard
nonparametric bootstrap (percentile intervals over row resampling) used
by the stability ablation: resample a suite's workloads with
replacement, recompute a statistic, and read the spread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BootstrapResult:
    """Bootstrap distribution summary of a statistic.

    Attributes
    ----------
    estimate:
        The statistic on the original sample.
    low / high:
        Percentile confidence bounds.
    confidence:
        The interval's nominal coverage (e.g. 0.95).
    samples:
        The bootstrap replicate values.
    """

    estimate: float
    low: float
    high: float
    confidence: float
    samples: np.ndarray

    @property
    def width(self):
        return self.high - self.low

    def contains(self, value):
        return self.low <= value <= self.high


def bootstrap_statistic(rows, statistic, n_boot=200, confidence=0.95,
                        rng=0, min_rows=2, replace=True,
                        subsample_size=None):
    """Percentile-bootstrap (or subsample) a row-wise statistic.

    Parameters
    ----------
    rows:
        2-D array; resampling happens over axis 0 (the workloads).
    statistic:
        Callable mapping a resampled 2-D array to a float. With the
        classic bootstrap (``replace=True``), statistics must tolerate
        duplicated rows; duplicates *bias* distance-based statistics
        (duplicate rows look like perfectly tight clusters and shrink
        min-max ranges), so cluster/coverage-style scores should use
        ``replace=False`` subsampling instead.
    n_boot:
        Number of replicates.
    confidence:
        Interval coverage in (0, 1).
    rng:
        Seed or Generator.
    min_rows:
        With replacement, resamples are redrawn until at least this many
        *distinct* rows are present.
    replace:
        ``True``: classic n-out-of-n bootstrap. ``False``: m-out-of-n
        subsampling without replacement.
    subsample_size:
        ``m`` for the subsampling variant (default ``n - 1``).

    Returns
    -------
    BootstrapResult
    """
    rows = np.asarray(rows, dtype=float)
    if rows.ndim != 2:
        raise ValueError(f"rows must be 2-D, got shape {rows.shape}")
    n = rows.shape[0]
    if n < 2:
        raise ValueError("need at least two rows to bootstrap")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_boot < 1:
        raise ValueError("n_boot must be >= 1")
    if not replace:
        if subsample_size is None:
            subsample_size = n - 1
        if not (2 <= subsample_size <= n):
            raise ValueError(
                f"subsample_size must be in [2, {n}], got {subsample_size}"
            )
    rng = np.random.default_rng(rng)

    estimate = float(statistic(rows))
    samples = np.empty(n_boot)
    for b in range(n_boot):
        if replace:
            for _ in range(32):
                idx = rng.integers(0, n, size=n)
                if np.unique(idx).size >= min(min_rows, n):
                    break
        else:
            idx = rng.choice(n, size=subsample_size, replace=False)
        samples[b] = statistic(rows[idx])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(samples, [alpha, 1.0 - alpha])
    return BootstrapResult(
        estimate=estimate,
        low=float(low),
        high=float(high),
        confidence=confidence,
        samples=samples,
    )


def ranking_stability(score_by_suite, score_samples_by_suite):
    """How often does the point-estimate ranking survive resampling?

    Parameters
    ----------
    score_by_suite:
        Suite name -> point estimate.
    score_samples_by_suite:
        Suite name -> bootstrap replicate array (all the same length).

    Returns
    -------
    float
        Fraction of bootstrap replicates whose induced ranking equals
        the point-estimate ranking.
    """
    names = list(score_by_suite)
    if not names:
        raise ValueError("no suites")
    lengths = {len(score_samples_by_suite[n]) for n in names}
    if len(lengths) != 1:
        raise ValueError("replicate arrays must share a length")
    n_boot = lengths.pop()
    reference = tuple(sorted(names, key=lambda n: score_by_suite[n]))
    stable = 0
    for b in range(n_boot):
        ranking = tuple(
            sorted(names, key=lambda n: score_samples_by_suite[n][b])
        )
        if ranking == reference:
            stable += 1
    return stable / n_boot
