#!/usr/bin/env python
"""Compose a new benchmark suite from existing workloads.

The paper's abstract: Perspector can be used to "systematically and
rigorously create a suite of workloads". This example pools the
workloads of three suites, then greedily composes an 8-member suite
maximizing coverage and spread while penalizing clustering -- and shows
the composed suite beating each donor suite on the combined objective.

Usage::

    python examples/compose_suite.py
"""

from repro import Perspector, load_suite
from repro.core.composer import SuiteComposer, default_objective, merge_pools
from repro.core.matrix import CounterMatrix
from repro.perf.session import PerfSession
from repro.stats.preprocessing import minmax_normalize

DONORS = ("nbench", "lmbench", "sgxgauge")


def main():
    session = PerfSession(n_intervals=10, ops_per_interval=600,
                          warmup_intervals=3, seed=7)
    print(f"measuring donor suites: {', '.join(DONORS)} ...")
    matrices = [
        CounterMatrix.from_measurement(session.run_suite(load_suite(s)))
        for s in DONORS
    ]
    pool = merge_pools(*matrices)
    print(f"candidate pool: {pool.n_workloads} workloads")

    composer = SuiteComposer(suite_size=8, seed=3)
    result = composer.compose(pool)

    print("\ncomposed suite (selection order):")
    for name in result.selected:
        print(f"  {name}")
    print(f"\nobjective (coverage - 0.5*spread - 0.5*cluster): "
          f"{result.final_objective:.4f}")

    print("\ndonor suites on the same objective:")
    for m in matrices:
        normalized = CounterMatrix(
            workloads=m.workloads, events=m.events,
            values=minmax_normalize(m.values), suite_name=m.suite_name,
        )
        print(f"  {m.suite_name:<10} {default_objective(normalized, 3):.4f}")

    print("\nfull scorecard of the composed suite:")
    card = Perspector(seed=3).score(result.matrix)
    print(f"  {card}")


if __name__ == "__main__":
    main()
