#!/usr/bin/env python
"""Suite audit: pick the right benchmark suite for a study.

The scenario from the paper's introduction: a researcher evaluating a new
memory-subsystem design has several candidate suites and needs to choose
one *for the events she cares about*. This example compares three suites
jointly (the Fig. 3 setting), then re-focuses the comparison on
LLC-related and TLB-related events (Section IV-B) and prints a
recommendation per focus.

Usage::

    python examples/suite_audit.py [suite ...]
"""

import sys

from repro import Perspector, available_suites, load_suite
from repro.perf.session import PerfSession

DEFAULT_SUITES = ("nbench", "lmbench", "sgxgauge")


def recommend(comparison):
    """Naive recommendation: rank suites on each score and take the best
    mean rank (this is the kind of judgement Perspector makes
    quantitative)."""
    names = comparison.suite_names
    mean_rank = {n: 0.0 for n in names}
    for score in ("cluster", "trend", "coverage", "spread"):
        for rank, name in enumerate(comparison.ranking(score)):
            mean_rank[name] += rank / 4.0
    return min(mean_rank, key=mean_rank.get)


def main():
    chosen = sys.argv[1:] or list(DEFAULT_SUITES)
    unknown = [s for s in chosen if s not in available_suites()]
    if unknown:
        raise SystemExit(
            f"unknown suites {unknown}; pick from {available_suites()}"
        )
    if len(chosen) < 2:
        raise SystemExit("need at least two suites to compare")

    session = PerfSession(n_intervals=12, ops_per_interval=800,
                          warmup_intervals=4, seed=7)
    perspector = Perspector(session=session, seed=3)

    print(f"measuring {len(chosen)} suites ...")
    matrices = [perspector.measure(load_suite(s)) for s in chosen]

    for focus in ("all", "llc", "tlb"):
        comparison = perspector.compare(*matrices, focus=focus)
        print()
        print(comparison.table())
        print(f"==> recommended for focus={focus}: {recommend(comparison)}")


if __name__ == "__main__":
    main()
