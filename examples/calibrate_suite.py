#!/usr/bin/env python
"""Calibrate a suite: equalize per-workload execution time.

The paper's evaluation "ensure[s] that the execution times of all the
workloads are roughly the same by tweaking the input values". This
example automates that tweak for a deliberately unbalanced two-phase
suite: the calibrator measures cycles per workload on the target machine
and iteratively scales each workload's operation intensity until the
suite runs balanced.

Usage::

    python examples/calibrate_suite.py
"""

from repro.core.calibrate import SuiteCalibrator
from repro.perf.session import PerfSession
from repro.workloads import load_suite
from repro.workloads.base import Suite


def main():
    # LMbench is naturally unbalanced: bandwidth probes execute many
    # more operations per sampling interval than latency probes.
    suite = load_suite("lmbench")
    # Keep the example fast: calibrate a 5-member sub-suite.
    suite = Suite(
        name="lmbench-mini",
        workloads=tuple(list(suite)[:5]),
        description=suite.description,
    )

    session = PerfSession(n_intervals=8, ops_per_interval=500,
                          warmup_intervals=2, seed=7)
    calibrator = SuiteCalibrator(session, max_iterations=4, tolerance=1.2)

    print(f"calibrating {suite.name!r} ({len(suite)} workloads) ...")
    result = calibrator.calibrate(suite)

    print(f"\ncycle imbalance (max/min): "
          f"{result.imbalance_before:.2f}x -> "
          f"{result.imbalance_after:.2f}x "
          f"in {result.iterations} iteration(s)\n")
    header = f"{'workload':<16} {'cycles before':>14} {'cycles after':>14} {'multiplier':>11}"
    print(header)
    print("-" * len(header))
    for name in result.multipliers:
        print(f"{name:<16} {result.cycles_before[name]:>14.0f} "
              f"{result.cycles_after[name]:>14.0f} "
              f"{result.multipliers[name]:>10.2f}x")


if __name__ == "__main__":
    main()
