#!/usr/bin/env python
"""Quickstart: score one benchmark suite with Perspector.

Runs the simulated measurement stack on the Nbench model, prints the four
Section III scores, and drills into each score's decomposition. Takes a
few seconds.

Usage::

    python examples/quickstart.py [suite]
"""

import sys

from repro import Perspector, available_suites, load_suite
from repro.perf.session import PerfSession


def main():
    suite_name = sys.argv[1] if len(sys.argv) > 1 else "nbench"
    if suite_name not in available_suites():
        raise SystemExit(
            f"unknown suite {suite_name!r}; pick one of {available_suites()}"
        )

    # A PerfSession is the simulated `perf stat -I`: it runs every
    # workload of the suite on the Table II Xeon model and samples the
    # Table IV PMU events over time.
    session = PerfSession(
        n_intervals=12,          # retained sampling intervals per workload
        ops_per_interval=800,    # memory operations per interval
        warmup_intervals=4,      # discarded (cache-warming) intervals
        seed=7,
    )
    perspector = Perspector(session=session, seed=3)

    suite = load_suite(suite_name)
    print(f"scoring {suite.name!r}: {len(suite)} workloads ...")
    card = perspector.score(suite)

    print()
    print(card)
    print()
    print("score decompositions:")

    cluster = card.details["cluster"]
    print(f"  cluster: best split at k={cluster.best_k} "
          f"(silhouette {cluster.per_k[cluster.best_k]:.3f}); "
          "lower overall = more diverse suite")

    trend = card.details["trend"]
    top = sorted(trend.per_event.items(), key=lambda kv: -kv[1])[:3]
    print("  trend:   most phase-rich events: "
          + ", ".join(f"{e} ({v:.0f})" for e, v in top))

    coverage = card.details["coverage"]
    print(f"  coverage: {coverage.n_components} PCA components carry 98% "
          "of the suite's counter variance")

    spread = card.details["spread"]
    worst = max(spread.per_item, key=spread.per_item.get)
    print(f"  spread:  least uniformly spread workload: {worst} "
          f"(KS D={spread.per_item[worst]:.3f})")


if __name__ == "__main__":
    main()
