#!/usr/bin/env python
"""Subset selection: run 8 SPEC'17 workloads instead of 43.

The Section IV-C use case: executing all 43 SPEC'17 benchmarks is
expensive, so pick a representative subset whose Perspector scores match
the full suite's. This example selects the subset with the paper's LHS
method, reports the score deviation, and contrasts it with random
same-size subsets and the prior-work PCA+hierarchical pipeline.

Usage::

    python examples/subset_selection.py [size]
"""

import sys

import numpy as np

from repro.baselines import PCAHierarchicalSubsetter
from repro.core.matrix import CounterMatrix
from repro.core.subset import LHSSubsetGenerator, random_subset_report
from repro.perf.session import PerfSession
from repro.workloads import load_suite


def main():
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 8

    session = PerfSession(n_intervals=12, ops_per_interval=800,
                          warmup_intervals=4, seed=7)
    suite = load_suite("spec17")
    print(f"measuring {suite.name!r} ({len(suite)} workloads) ...")
    matrix = CounterMatrix.from_measurement(session.run_suite(suite))

    print(f"\nLHS subset ({len(suite)} -> {size}):")
    report = LHSSubsetGenerator(subset_size=size, seed=3).report(matrix,
                                                                 seed=3)
    print(report)

    deviations = [
        random_subset_report(matrix, size, seed=s).mean_deviation_pct
        for s in range(5)
    ]
    print(f"\nrandom subsets of the same size: "
          f"{np.mean(deviations):.2f}% mean deviation "
          f"(min {min(deviations):.2f}%, max {max(deviations):.2f}%)")

    prior = PCAHierarchicalSubsetter(subset_size=size).select(matrix)
    print("\nprior-work PCA+hierarchical picks:")
    print("  " + ", ".join(prior))

    print(f"\npaper reference: 43 -> 8 at 6.53% mean deviation.")


if __name__ == "__main__":
    main()
