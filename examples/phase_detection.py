#!/usr/bin/env python
"""Phase detection: find a workload's execution phases from PMU counters.

Section II's first criticism of prior work is that aggregate counter
values hide phase behaviour. This example runs one multi-phase SGXGauge
workload on the simulator, detects phase boundaries from the sampled
counter series alone (the Nomani & Szefer technique the paper cites), and
checks the detection against the workload model's ground-truth phase
schedule.

Usage::

    python examples/phase_detection.py [workload]
"""

import sys

from repro.core.phases import (
    boundary_recall,
    detect_phases,
    true_boundaries_from_intervals,
)
from repro.experiments.fig1_normalization import sparkline
from repro.perf.events import samples_to_series
from repro.uarch.config import xeon_e2186g
from repro.uarch.cpu import CPU
from repro.workloads import load_suite


def main():
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "bfs"
    suite = load_suite("sgxgauge")
    workload = suite.workload(workload_name)
    print(f"{workload.name}: {len(workload.phases)} ground-truth phases "
          f"({', '.join(p.name for p in workload.phases)})")

    intervals = list(workload.intervals(30, 800, seed=5))
    truth = true_boundaries_from_intervals(intervals)

    cpu = CPU(xeon_e2186g(), seed=5)
    samples = [cpu.execute_interval(iv) for iv in intervals]
    series = samples_to_series(samples)

    print("\nsampled counter series:")
    for event in ("LLC-load-misses", "dTLB-load-misses", "branch-misses"):
        print(f"  {event:<18} |{sparkline(series[event], width=60)}|")

    result = detect_phases(series, window=3, threshold=0.8, min_gap=3)
    print(f"\nground-truth boundaries: {list(truth)}")
    print(f"detected boundaries:     {list(result.boundaries)}")
    recall = boundary_recall(result.boundaries, truth, tolerance=2)
    print(f"boundary recall (tolerance 2 intervals): {recall:.0%}")
    print(f"detected {result.n_phases} phases:")
    for seg in result.segments:
        names = {intervals[i].phase_name for i in range(seg.start, seg.end)}
        print(f"  intervals [{seg.start:>2}, {seg.end:>2}) "
              f"<- true phase(s): {', '.join(sorted(names))}")


if __name__ == "__main__":
    main()
