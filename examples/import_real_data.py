#!/usr/bin/env python
"""Import externally measured counters and score them.

Perspector's metrics do not care where the counter matrix came from; a
practitioner with real ``perf stat`` output can score their own suite.
This example fakes the external path end-to-end: it exports one suite's
measured totals to CSV (the shape a perf post-processing script emits),
re-imports the CSV as if it were foreign data, scores it, and confirms
the verdict matches the in-memory original.

Usage::

    python examples/import_real_data.py
"""

import io

from repro import Perspector, load_suite
from repro.core.io import from_csv, to_csv
from repro.core.matrix import CounterMatrix
from repro.perf.session import PerfSession


def main():
    session = PerfSession(n_intervals=10, ops_per_interval=600,
                          warmup_intervals=3, seed=7)
    perspector = Perspector(seed=3)

    print("measuring nbench (pretend this happened on real hardware) ...")
    matrix = CounterMatrix.from_measurement(
        session.run_suite(load_suite("nbench"))
    )

    csv_text = to_csv(matrix)
    print(f"\nexported CSV ({len(csv_text.splitlines())} lines); head:")
    for line in csv_text.splitlines()[:3]:
        print(" ", line[:100] + ("..." if len(line) > 100 else ""))

    imported = from_csv(io.StringIO(csv_text), suite_name="nbench-import")
    print("\nscoring the imported matrix (no simulator involved):")
    card = perspector.score(imported)
    print(" ", card)

    original = perspector.score(matrix)
    print("\nsanity: scores match the in-memory original:")
    for score in ("cluster", "coverage", "spread"):
        match = abs(card.score(score) - original.score(score)) < 1e-9
        print(f"  {score:<9} {'OK' if match else 'MISMATCH'}")
    print("\n(note: the TrendScore needs time series, which CSV cannot "
          "carry -- use the JSON exchange in repro.core.io for that)")


if __name__ == "__main__":
    main()
