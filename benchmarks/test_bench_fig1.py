"""Bench: regenerate Fig. 1 (trend-series normalization)."""

from conftest import run_once

from repro.experiments import fig1_normalization as fig1


def test_fig1_normalization(benchmark, config):
    result = run_once(benchmark, fig1.run, config)
    print()
    print(fig1.render(result))

    # Shape: raw series span orders of magnitude across workloads ...
    assert result.raw_range_ratio > 10
    # ... normalized series share a bounded axis.
    assert result.normalized_range_ratio < 3
    for name in result.workloads:
        s = result.normalized[name]
        assert s.min() >= 0.0 and s.max() <= 100.0
        assert s.shape == (100,)
