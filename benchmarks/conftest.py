"""Shared configuration for the benchmark harness.

Every bench regenerates one paper artifact via the corresponding
``repro.experiments`` driver. The drivers share the measurement cache in
:mod:`repro.experiments.runner`, so the expensive suite simulations run
once per pytest session regardless of how many benches consume them.

Benches run at :meth:`ExperimentConfig.quick` trace lengths; the numbers
in EXPERIMENTS.md come from :meth:`ExperimentConfig.full` (run via
``perspector experiment <name>``). The *shape* checks pass at both.
"""

import pytest

from repro.experiments.runner import ExperimentConfig


@pytest.fixture(scope="session")
def config():
    """Trace-length preset shared by every bench."""
    return ExperimentConfig.quick()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiment drivers simulate entire suites; timing one round is
    the meaningful measurement (repeat rounds would hit the cache and
    time something else).
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
