"""Bench: regenerate Fig. 3a/b/c (the headline suite-score tables)."""

from conftest import run_once

from repro.experiments import fig3_suite_scores as fig3


def test_fig3_suite_scores(benchmark, config):
    result = run_once(benchmark, fig3.run, config)
    print()
    print(fig3.render(result))

    failures = fig3.check_expected_shape(result)
    assert not failures, "\n".join(failures)
