"""Bench: regenerate Fig. 5 (LLC-miss trends, Nbench vs SPEC'17)."""

from conftest import run_once

from repro.experiments import fig5_trend as fig5


def test_fig5_trend(benchmark, config):
    result = run_once(benchmark, fig5.run, config)
    print()
    print(fig5.render(result))

    nbench = result.panel("nbench")
    spec = result.panel("spec17")
    # The paper's Fig. 5 point: SPEC'17's real applications show visible
    # LLC-miss trends; Nbench's kernels run comparatively flat.
    assert spec.mean_temporal_variation > nbench.mean_temporal_variation
    for panel in (nbench, spec):
        for series in panel.normalized:
            assert series.min() >= 0.0 and series.max() <= 100.0
