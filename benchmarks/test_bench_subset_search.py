"""Bench: sliced subset evaluation vs naive per-candidate re-scoring.

Guards the subset evaluator's performance contract from DESIGN.md
section 8 -- a 64-candidate search through the precompute-and-slice
:class:`~repro.engine.subset_eval.SubsetEvaluator` must be at least 20x
faster than naive from-scratch re-scoring of every candidate (the
committed ``BENCH_subset.json`` baseline), and the sampled naive reports
must be bit-identical to the sliced ones.
"""

import json
import pathlib

from repro.engine.subset_bench import MIN_SPEEDUP, render, run_bench

from conftest import run_once

BASELINE = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_subset.json"


def test_sliced_search_speedup(benchmark):
    result = run_once(benchmark, run_bench)
    print()
    print(render(result))

    assert result["identical"], "sliced reports drifted from naive reports"
    assert result["all_sliced"], \
        "a bench candidate fell off the sliced trend path"
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"sliced-vs-naive speedup {result['speedup']:.1f}x is below the "
        f"{MIN_SPEEDUP:.0f}x contract"
    )


def test_baseline_file_is_committed_and_consistent():
    assert BASELINE.exists(), "BENCH_subset.json baseline missing"
    baseline = json.loads(BASELINE.read_text())
    assert baseline["min_speedup"] == MIN_SPEEDUP
    assert baseline["identical"] is True
    assert baseline["all_sliced"] is True
    assert baseline["speedup"] >= baseline["min_speedup"]
