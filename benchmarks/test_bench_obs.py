"""Bench: span-tracing overhead on a full score pass.

Regenerates no paper artifact; it guards the observability layer's cost
contracts from DESIGN.md §10 against the committed ``BENCH_obs.json``
baseline -- a traced cache-off score pass within 5% of untraced, the
no-op ``span()`` path under 1% of the untraced wall time, and the
traced scorecard bit-identical to the untraced one.
"""

import json
import pathlib

from repro.obs.bench import MAX_NOOP_PCT, MAX_OVERHEAD_PCT, run_bench

from conftest import run_once

BASELINE = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_obs.json"


def test_tracing_overhead(benchmark):
    result = run_once(benchmark, run_bench)
    print()
    from repro.obs.bench import render

    print(render(result))

    assert result["identical"], "traced scorecard drifted from untraced"
    assert result["overhead_pct"] <= MAX_OVERHEAD_PCT, (
        f"tracing overhead {result['overhead_pct']:+.1f}% exceeds the "
        f"{MAX_OVERHEAD_PCT:.0f}% contract"
    )
    assert result["noop_total_pct"] <= MAX_NOOP_PCT, (
        f"no-op span cost {result['noop_total_pct']:.3f}% exceeds the "
        f"{MAX_NOOP_PCT:.0f}% contract"
    )


def test_baseline_file_is_committed_and_consistent():
    assert BASELINE.exists(), "BENCH_obs.json baseline missing"
    baseline = json.loads(BASELINE.read_text())
    assert baseline["max_overhead_pct"] == MAX_OVERHEAD_PCT
    assert baseline["max_noop_pct"] == MAX_NOOP_PCT
    assert baseline["identical"] is True
    assert baseline["overhead_pct"] <= baseline["max_overhead_pct"]
    assert baseline["noop_total_pct"] <= baseline["max_noop_pct"]
