"""Bench: regenerate Fig. 4 (clustering in Nbench vs SGXGauge)."""

from conftest import run_once

from repro.experiments import fig4_clustering as fig4


def test_fig4_clustering(benchmark, config):
    result = run_once(benchmark, fig4.run, config)
    print()
    print(fig4.render(result))

    nbench = result.panel("nbench")
    sgx = result.panel("sgxgauge")
    # The paper's Fig. 4 point: both suites show visible grouping in the
    # PCA plane (unlike a uniform cloud), quantified by a clearly
    # positive silhouette at the best cluster count.
    assert nbench.silhouette_at_best_k > 0.15
    assert sgx.silhouette_at_best_k > 0.15
    # Both panels are proper 2-D projections with one point per workload.
    assert nbench.points.shape == (10, 2)
    assert sgx.points.shape == (8, 2)
    assert set(nbench.labels) == set(range(nbench.best_k))
