"""Bench: warm execution substrate speedups.

Like ``test_bench_engine.py`` this regenerates no paper artifact; it
guards the DESIGN.md section 9 performance contracts against the
committed ``BENCH_parallel.json`` baseline:

* the persistent spawn pool must score a batch of matrices at least 2x
  faster than the old pool-per-call lifecycle at ``workers=2``, with
  scorecards bit-identical to a serial engine's;
* a disk-warm CLI run sharing ``--cache-dir`` with a cold one must be
  at least 2x faster and print byte-identical output.
"""

import json
import pathlib

from repro.engine.parallel_bench import MIN_SPEEDUP, render, run_bench

from conftest import run_once

BASELINE = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_parallel.json"


def test_warm_substrate_speedups(benchmark):
    result = run_once(benchmark, run_bench)
    print()
    print(render(result))

    for leg in ("pool", "cli"):
        assert result[leg]["identical"], \
            f"{leg}: results drifted from the reference run"
        assert result[leg]["speedup"] >= MIN_SPEEDUP, (
            f"{leg}: speedup {result[leg]['speedup']:.1f}x is below "
            f"the {MIN_SPEEDUP:.0f}x contract"
        )


def test_baseline_file_is_committed_and_consistent():
    assert BASELINE.exists(), "BENCH_parallel.json baseline missing"
    baseline = json.loads(BASELINE.read_text())
    assert baseline["min_speedup"] == MIN_SPEEDUP
    for leg in ("pool", "cli"):
        assert baseline[leg]["identical"] is True
        assert baseline[leg]["speedup"] >= baseline["min_speedup"]
