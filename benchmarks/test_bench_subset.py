"""Bench: regenerate Section IV-C (SPEC'17 43 -> 8 via LHS)."""

from conftest import run_once

from repro.experiments import subset_generation as subset


def test_subset_generation(benchmark, config):
    result = run_once(benchmark, subset.run, config)
    print()
    print(subset.render(result))

    # Paper: the LHS subset's scores deviate from the full suite's by a
    # small single/low-double-digit percentage (6.53% on their testbed).
    assert len(result.lhs.selected) == 8
    assert result.lhs.mean_deviation_pct < 35.0
    # And LHS must beat blind chance on average.
    assert result.lhs.mean_deviation_pct < result.random_mean_deviation


def test_subset_methods_comparison(benchmark, config):
    result = run_once(benchmark, subset.run, config)
    # All methods produce valid 8-element subsets of the 43.
    for report in (result.lhs, result.prior_work, result.greedy):
        assert len(set(report.selected)) == 8
    # Structured methods should not be wildly worse than chance.
    assert result.prior_work.mean_deviation_pct < (
        2.5 * result.random_mean_deviation + 10
    )
