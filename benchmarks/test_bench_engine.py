"""Bench: scoring-engine cold-vs-warm cache speedup.

Unlike the figure benches this regenerates no paper artifact; it guards
the engine's performance contract from DESIGN.md §7 -- warm-cache
re-scoring of a SPEC'17-sized subset experiment must be at least 3x
faster than cold (the committed ``BENCH_engine.json`` baseline), and
the warm results must be bit-identical to the cold ones.
"""

import json
import pathlib

from repro.engine.bench import MIN_SPEEDUP, run_bench

from conftest import run_once

BASELINE = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_engine.json"


def test_engine_warm_cache_speedup(benchmark):
    result = run_once(benchmark, run_bench)
    print()
    from repro.engine.bench import render

    print(render(result))

    assert result["identical"], "warm results drifted from cold results"
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"warm-cache speedup {result['speedup']:.1f}x is below the "
        f"{MIN_SPEEDUP:.0f}x contract"
    )


def test_baseline_file_is_committed_and_consistent():
    assert BASELINE.exists(), "BENCH_engine.json baseline missing"
    baseline = json.loads(BASELINE.read_text())
    assert baseline["min_speedup"] == MIN_SPEEDUP
    assert baseline["identical"] is True
    assert baseline["speedup"] >= baseline["min_speedup"]
