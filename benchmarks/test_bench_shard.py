"""Bench: multi-host shard fan-out speedup.

Like ``test_bench_parallel.py`` this regenerates no paper artifact; it
guards the DESIGN.md §14 performance contract against the committed
``BENCH_shard.json`` baseline:

* an all-pairs DTW matrix computed through 2 local shard daemons must
  beat the 1-daemon arm by at least 1.6x -- on hosts with at least 2
  cores, where two daemon subprocesses can actually run concurrently
  (a single-core host time-shares them and the ratio is physics-bound
  to ~1x, so only bit-identity is enforced there);
* both sharded arms must be bit-identical to a local serial engine --
  that part holds on any host and is never skipped.
"""

import json
import pathlib

from repro.engine.shard_bench import (
    MIN_CORES,
    MIN_SPEEDUP,
    render,
    run_shard_bench,
)

from conftest import run_once

BASELINE = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_shard.json"


def test_shard_fanout_speedup(benchmark):
    result = run_once(benchmark, run_shard_bench)
    print()
    print(render(result))

    assert result["identical"], \
        "sharded DTW matrices drifted from the serial engine's bits"
    if (result.get("cores") or 0) >= MIN_CORES:
        assert result["speedup"] >= MIN_SPEEDUP, (
            f"2-shard speedup {result['speedup']:.1f}x is below the "
            f"{MIN_SPEEDUP:.1f}x contract on a "
            f"{result['cores']}-core host"
        )


def test_baseline_file_is_committed_and_consistent():
    assert BASELINE.exists(), "BENCH_shard.json baseline missing"
    baseline = json.loads(BASELINE.read_text())
    assert baseline["min_speedup"] == MIN_SPEEDUP
    assert baseline["identical"] is True
    if (baseline.get("cores") or 0) >= MIN_CORES:
        assert baseline["speedup"] >= baseline["min_speedup"]
