"""Bench: score stability (bootstrap intervals + ranking agreement)."""

import numpy as np
from conftest import run_once

from repro.experiments import stability


def test_stability(benchmark, config):
    result = run_once(benchmark, stability.run, config)
    print()
    print(stability.render(result))

    for score, b in result.bootstrap.items():
        assert b.low <= b.high, score
        # Subsampling intervals should sit near the point estimate
        # (distance-based scores have leave-out bias, so containment is
        # not guaranteed -- closeness is the meaningful check).
        scale = max(abs(b.estimate), 1e-6)
        assert abs(b.estimate - np.clip(b.estimate, b.low, b.high)) \
            <= 1.2 * scale, score
    # The headline rankings should be reasonably reproducible across
    # trace seeds; coverage (driven by extremes) is the most stable.
    assert result.ranking_agreement["coverage"] >= 0.5
