"""Bench: footnote 1 -- PMU multiplexing accuracy loss."""

from conftest import run_once

from repro.experiments import multiplexing as mux


def test_multiplexing_error(benchmark):
    result = run_once(benchmark, mux.run)
    print()
    print(mux.render(result))

    # With enough slots for every event there is no estimation error.
    assert result.mean_error[14] == 0.0
    # Over-subscribing the counters on a phase-changing workload loses
    # accuracy (the paper's footnote 1), and more aggressively with
    # fewer slots.
    assert result.mean_error[4] > 0.0
    assert result.max_error[2] >= result.max_error[7]
