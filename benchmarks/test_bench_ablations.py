"""Bench: design-choice ablations (see DESIGN.md)."""

from conftest import run_once

from repro.experiments import ablations


def test_ablations(benchmark, config):
    result = run_once(benchmark, ablations.run, config)
    print()
    print(ablations.render(result))

    # PCA variance target: keeping more variance can only add (weakly
    # informative) components, so the mean-variance score is monotone
    # non-increasing in the target.
    targets = sorted(result.pca_variance)
    values = [result.pca_variance[t] for t in targets]
    assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    # K-means restarts: more restarts must not increase seed variance
    # much (stability is the reason the ClusterScore uses them).
    assert result.kmeans_restarts[16][1] <= result.kmeans_restarts[1][1] + 0.02

    # DTW band: constraining the warp can only raise each pairwise
    # distance, so the banded trend scores dominate the unconstrained one.
    assert result.dtw_band["1"] >= result.dtw_band["none"] - 1e-9
    assert result.dtw_band["3"] >= result.dtw_band["none"] - 1e-9

    # Both Eq. 14 readings produce scores in [0, 1].
    for value in result.spread_axis.values():
        assert 0.0 <= value <= 1.0

    # The CDF reading is a consequential knob: the three readings give
    # materially different trend scores (the pooled reading converts
    # cross-workload level diversity into trend, so it reads highest on
    # a diverse suite).
    values = result.cdf_mode
    assert all(v > 0 for v in values.values())
    assert values["pooled"] == max(values.values())
    assert max(values.values()) > 1.2 * min(values.values())
