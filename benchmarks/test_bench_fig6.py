"""Bench: regenerate Fig. 6 (PCA coverage, LMbench vs SPEC'17)."""

import numpy as np
from conftest import run_once

from repro.experiments import fig6_pca_coverage as fig6


def test_fig6_pca_coverage(benchmark, config):
    result = run_once(benchmark, fig6.run, config)
    print()
    print(fig6.render(result))

    # The paper's Fig. 6 point: LMbench's microbenchmarks are flung wide
    # across the (jointly normalized) PCA plane; SPEC'17 is denser.
    assert result.coverage["lmbench"] > result.coverage["spec17"]
    lm_extent = np.prod(result.hull_extent["lmbench"])
    sp_extent = np.prod(result.hull_extent["spec17"])
    assert lm_extent > sp_extent
    assert result.points["lmbench"].shape == (10, 2)
    assert result.points["spec17"].shape == (43, 2)
