"""Bench: machine-sensitivity ablations (replacement policy, prefetcher,
branch predictor)."""

from conftest import run_once

from repro.experiments import machine_ablations as mach


def test_machine_ablations(benchmark):
    result = run_once(benchmark, mach.run, "sgxgauge",
                      n_intervals=10, ops_per_interval=600)
    print()
    print(mach.render(result))

    # Every variant produced a complete scorecard.
    for group in (result.by_policy, result.by_prefetcher,
                  result.by_predictor):
        for card in group.values():
            assert card.coverage > 0
            assert 0 <= card.spread <= 1

    # The branch predictor cannot change memory-side scores much, but
    # the replacement policy must move *something*: LRU and random
    # differ in measured misses, hence in the counter matrix.
    lru = result.by_policy["lru"]
    rnd = result.by_policy["random"]
    moved = any(
        abs(lru.score(s) - rnd.score(s)) > 1e-6
        for s in ("cluster", "trend", "coverage", "spread")
    )
    assert moved
