"""Bench: regenerate Fig. 2 (coverage vs spread illustration)."""

from conftest import run_once

from repro.experiments import fig2_coverage_vs_spread as fig2


def test_fig2_coverage_vs_spread(benchmark):
    result = run_once(benchmark, fig2.run)
    print()
    print(fig2.render(result))

    # The paper's point: WA's outliers keep its coverage at least
    # comparable to WB's, but WB clearly wins on spread.
    assert result.wa_coverage > 0.5 * result.wb_coverage
    assert result.wb_spread < result.wa_spread - 0.1
