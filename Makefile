# Development targets. `make qa` is the pre-merge gate documented in
# benchmarks/README.md: the in-tree static-analysis pass (per-file
# rules plus the whole-program effect analyzer behind --deep), ruff,
# mypy (both skipped with a notice when not installed), the
# bit-for-bit determinism checker (which also proves the parallel
# scoring engine -- and the sliced subset search -- bit-identical at
# workers=2), and the serve-smoke check (the scoring daemon serves the
# CLI's exact bits and shuts down leak-free).
# `make bench` includes the engine's cold-vs-warm cache bench, the
# subset evaluator's sliced-vs-naive bench, the warm-substrate
# bench (persistent pool vs pool-per-call + disk-cold vs disk-warm
# CLI), the tracing-overhead bench, the history-recording overhead
# bench (<= 5% with the run-history store enabled, bit-identical),
# and the vectorized-vs-reference
# kernel bench (banded all-pairs DTW >= 5x, mixed-length bucketed
# >= 3x, all bit-identical), and the shard fan-out bench (all-pairs
# DTW through 2 local shard daemons >= 1.6x over 1 on multi-core
# hosts, bit-identical everywhere), guarded by the BENCH_engine.json /
# BENCH_subset.json / BENCH_parallel.json / BENCH_obs.json /
# BENCH_history.json / BENCH_kernels.json / BENCH_shard.json baselines.

PYTHON ?= python
RUN = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) $(PYTHON)

.PHONY: qa lint lint-deep ruff mypy determinism serve-smoke \
	shard-smoke history-smoke test bench bench-engine bench-subset \
	bench-parallel bench-obs bench-history bench-kernels bench-shard

qa: lint lint-deep ruff mypy determinism serve-smoke shard-smoke \
		history-smoke
	@echo "qa: all gates passed"

lint:
	$(RUN) -m repro.qa.lint src/repro

lint-deep:
	$(RUN) -m repro.qa.lint --deep src/repro

ruff:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro; \
	else \
		echo "ruff not installed; skipping (pip install ruff)"; \
	fi

mypy:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping (pip install mypy)"; \
	fi

determinism:
	$(RUN) -m repro.qa.determinism --workers 2

# Serve-smoke: boot the scoring daemon, score over real HTTP, diff the
# served scorecards bit-for-bit against the one-shot CLI (cold, warm,
# restarted-over-a-warm-disk-tier, concurrent), check the warm-cache
# counters moved, and verify a leak-free shutdown.
serve-smoke:
	$(RUN) -m repro.qa.service_check --workers 2

# Shard-smoke: boot 2 local daemons as shard workers, run sharded
# scoring and subset search (cold, disk-warm, vectorized daemons,
# kill-one-shard), and diff every artifact bit-for-bit against the
# serial oracle (same check as `repro qa --shards 2`).
shard-smoke:
	$(RUN) -m repro.qa.shard_check --shards 2

# History-smoke: recording on vs off must be bit-identical, an
# equal-digest re-run must diff to zero, and a perturbed score bit /
# inflated wall time / degraded hit rate must each trip the trajectory
# gates (same check as `repro qa --history`).
history-smoke:
	$(RUN) -m repro.qa.history_check

test:
	$(RUN) -m pytest -x -q

bench: bench-engine bench-subset bench-parallel bench-obs \
		bench-history bench-kernels bench-shard
	$(RUN) -m pytest benchmarks -q

bench-engine:
	$(RUN) -m repro.engine.bench --check

bench-subset:
	$(RUN) -m repro.engine.subset_bench --check

bench-parallel:
	$(RUN) -m repro.engine.parallel_bench --check

bench-obs:
	$(RUN) -m repro.obs.bench --check

bench-history:
	$(RUN) -m repro.obs.history_bench --check

bench-kernels:
	$(RUN) -m repro.stats.kernel_bench --check

bench-shard:
	$(RUN) -m repro.engine.shard_bench --check
